package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// T7Row is one circuit line of the fault-simulation throughput table.
type T7Row struct {
	Circuit        string
	Faults         int
	UncollapsedN   int
	Patterns       int
	SerialTime     time.Duration
	ParallelTime   time.Duration
	Speedup        float64
	CollapseSaving float64 // fraction of faults removed by collapsing
}

// T7Result holds table T7.
type T7Result struct {
	Rows []T7Row
}

// RunT7 reproduces table T7: 64-way parallel-pattern fault simulation
// against the serial baseline, and the fault-collapsing ablation. Shape:
// parallel simulation wins by an order of magnitude and collapsing removes
// roughly a third of the fault universe.
func RunT7(cfg Config) (*T7Result, error) {
	suite := []*circuit.Netlist{
		circuit.RippleAdder(16),
		circuit.ArrayMultiplier(8),
		circuit.Random(32, 1200, 2),
	}
	patterns := 512
	if cfg.Quick {
		suite = []*circuit.Netlist{
			circuit.RippleAdder(8),
			circuit.Random(16, 200, 2),
		}
		patterns = 128
	}
	res := &T7Result{}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tfaults(all)\tfaults(collapsed)\tpatterns\tserial\tparallel\tspeedup\n")
	for _, c := range suite {
		fsim, err := fault.NewSimulator(c)
		if err != nil {
			return nil, err
		}
		all := fault.AllFaults(c)
		faults := fault.Collapse(c, all)
		rng := rand.New(rand.NewSource(cfg.Seed))
		p := logic.NewPatternSet(len(c.PIs), patterns)
		p.RandFill(rng.Uint64)

		t0 := time.Now()
		rs := fsim.RunSerial(p, faults)
		serial := time.Since(t0)
		t1 := time.Now()
		rp := fsim.Run(p, faults)
		parallel := time.Since(t1)
		if rs.Detected != rp.Detected {
			return nil, fmt.Errorf("T7: serial/parallel disagree on %s: %d vs %d",
				c.Name, rs.Detected, rp.Detected)
		}
		row := T7Row{
			Circuit: c.Name, Faults: len(faults), UncollapsedN: len(all),
			Patterns: patterns, SerialTime: serial, ParallelTime: parallel,
			CollapseSaving: 1 - float64(len(faults))/float64(len(all)),
		}
		if parallel > 0 {
			row.Speedup = float64(serial) / float64(parallel)
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d (-%.0f%%)\t%d\t%v\t%v\t%.1fx\n",
			c.Name, len(all), len(faults), row.CollapseSaving*100, patterns,
			serial.Round(10*time.Microsecond), parallel.Round(10*time.Microsecond), row.Speedup)
	}
	return res, tw.Flush()
}
