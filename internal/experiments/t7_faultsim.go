package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/parallel"
)

// T7Row is one circuit line of the fault-simulation throughput table.
type T7Row struct {
	Circuit        string
	Faults         int
	UncollapsedN   int
	Patterns       int
	SerialTime     time.Duration
	ParallelTime   time.Duration // 64-way PPSFP, single goroutine
	ConcurrentTime time.Duration // 64-way PPSFP, fault shards across workers
	Speedup        float64       // serial / parallel
	ConcSpeedup    float64       // serial / concurrent
	CollapseSaving float64       // fraction of faults removed by collapsing
}

// T7Result holds table T7.
type T7Result struct {
	Workers int
	Rows    []T7Row
}

// RunT7 reproduces table T7: event-driven 64-way parallel-pattern fault
// simulation against the one-pattern-at-a-time baseline (same event-driven
// injection, no word parallelism), plus the multi-goroutine fault-shard
// engine and the fault-collapsing ablation. Shape: word parallelism wins,
// increasingly so on larger circuits; fault shards stack on top of it; and
// collapsing removes roughly a quarter of the fault universe. All three
// engines must agree bit-for-bit on the detected set.
func RunT7(cfg Config) (*T7Result, error) {
	suite := []*circuit.Netlist{
		circuit.RippleAdder(16),
		circuit.ArrayMultiplier(8),
		circuit.Random(32, 1200, 2),
	}
	patterns := 512
	if cfg.Quick {
		suite = []*circuit.Netlist{
			circuit.RippleAdder(8),
			circuit.Random(16, 200, 2),
		}
		patterns = 128
	}
	res := &T7Result{Workers: parallel.Workers(cfg.Workers)}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tfaults(all)\tfaults(collapsed)\tpatterns\tserial\tparallel\tspeedup\tconc(%d)\tspeedup\n", res.Workers)
	for _, c := range suite {
		fsim, err := fault.NewSimulatorWords(c, cfg.Words)
		if err != nil {
			return nil, err
		}
		all := fault.AllFaults(c)
		faults := fault.Collapse(c, all)
		rng := rand.New(rand.NewSource(cfg.Seed))
		p := logic.NewPatternSet(len(c.PIs), patterns)
		p.RandFill(rng.Uint64)

		t0 := time.Now()
		rs := fsim.RunSerial(p, faults)
		serial := time.Since(t0)
		t1 := time.Now()
		rp := fsim.Run(p, faults)
		par := time.Since(t1)
		t2 := time.Now()
		rc, err := fault.RunConcurrentWords(c, p, faults, cfg.Workers, cfg.Words)
		if err != nil {
			return nil, err
		}
		conc := time.Since(t2)
		if rs.Detected != rp.Detected || rp.Detected != rc.Detected {
			return nil, fmt.Errorf("T7: engines disagree on %s: serial %d, parallel %d, concurrent %d",
				c.Name, rs.Detected, rp.Detected, rc.Detected)
		}
		for i := range faults {
			if rp.DetectedBy[i] != rc.DetectedBy[i] {
				return nil, fmt.Errorf("T7: %s fault %d: concurrent first pattern %d != %d",
					c.Name, i, rc.DetectedBy[i], rp.DetectedBy[i])
			}
		}
		row := T7Row{
			Circuit: c.Name, Faults: len(faults), UncollapsedN: len(all),
			Patterns: patterns, SerialTime: serial, ParallelTime: par,
			ConcurrentTime: conc,
			CollapseSaving: 1 - float64(len(faults))/float64(len(all)),
		}
		if par > 0 {
			row.Speedup = float64(serial) / float64(par)
		}
		if conc > 0 {
			row.ConcSpeedup = float64(serial) / float64(conc)
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%d (-%.0f%%)\t%d\t%v\t%v\t%.1fx\t%v\t%.1fx\n",
			c.Name, len(all), len(faults), row.CollapseSaving*100, patterns,
			serial.Round(10*time.Microsecond), par.Round(10*time.Microsecond), row.Speedup,
			conc.Round(10*time.Microsecond), row.ConcSpeedup)
	}
	return res, tw.Flush()
}
