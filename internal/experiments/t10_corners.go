package experiments

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/liberty"
	"repro/internal/spice"
	"repro/internal/sta"
)

// T10Row is one temperature corner.
type T10Row struct {
	TempK       float64
	MedianDelay float64 // seconds, across all library arcs
	LibLeakage  float64 // watts, sum of cell averages
	CircuitFmax float64 // Hz, reference circuit
	CircuitLeak float64 // watts, reference circuit
}

// T10Result holds table T10 (extension: temperature corners).
type T10Result struct {
	Circuit string
	Rows    []T10Row
}

// RunT10 reproduces table T10: standard-cell delay and leakage across
// temperature corners from deep cold to hot, plus a reference circuit's
// fmax/leakage per corner. Shape: leakage falls by orders of magnitude
// toward cold (subthreshold conduction freezes out) while delay moves only
// mildly (mobility gain vs threshold rise); hot corners leak exponentially
// more and slow down.
func RunT10(cfg Config) (*T10Result, error) {
	temps := []float64{150, 250, 300, 350, 400}
	if cfg.Quick {
		temps = []float64{250, 300, 400}
	}
	ref := circuit.RippleAdder(16)
	if cfg.Quick {
		ref = circuit.RippleAdder(8)
	}
	res := &T10Result{Circuit: ref.Name}
	tw := cfg.table()
	fmt.Fprintf(tw, "temp[K]\tmedian cell delay[ps]\tlib leakage[W]\t%s fmax[MHz]\t%s leakage[W]\n", ref.Name, ref.Name)
	for _, temp := range temps {
		lib, err := liberty.Characterize(fmt.Sprintf("corner%g", temp),
			liberty.AllCells(), spice.Default(temp), liberty.CoarseGrid())
		if err != nil {
			return nil, err
		}
		hist := lib.DelayHistogram()
		med := hist[len(hist)/2]
		an, err := sta.New(ref, lib)
		if err != nil {
			return nil, err
		}
		tm, err := an.Run()
		if err != nil {
			return nil, err
		}
		row := T10Row{
			TempK: temp, MedianDelay: med, LibLeakage: lib.TotalLeakage(),
			CircuitFmax: tm.Fmax(), CircuitLeak: an.LeakagePower(),
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(tw, "%.0f\t%.2f\t%.3g\t%.0f\t%.3g\n",
			temp, med*1e12, row.LibLeakage, row.CircuitFmax/1e6, row.CircuitLeak)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	cold, hot := res.Rows[0], res.Rows[len(res.Rows)-1]
	cfg.printf("leakage spans %.1e× from %g K to %g K; fmax shifts %.1f%%\n",
		hot.LibLeakage/cold.LibLeakage, cold.TempK, hot.TempK,
		100*(hot.CircuitFmax/cold.CircuitFmax-1))
	return res, nil
}
