package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestF4DeterministicAcrossWorkers is the determinism regression test for
// the Monte Carlo fan-out: identical sample statistics (and surrogate
// error, which is a pure function of the samples) with 1 and 8 workers.
func TestF4DeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *F4Result {
		cfg := Config{Quick: true, Seed: 1, W: io.Discard, Workers: workers}
		res, err := RunF4(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	got := run(8)
	if got.Stats != ref.Stats {
		t.Errorf("sample statistics differ: workers=8 %+v, workers=1 %+v", got.Stats, ref.Stats)
	}
	if got.Nominal != ref.Nominal {
		t.Errorf("nominal differs: %v vs %v", got.Nominal, ref.Nominal)
	}
	if got.MLMAPE != ref.MLMAPE {
		t.Errorf("surrogate MAPE differs: %v vs %v", got.MLMAPE, ref.MLMAPE)
	}
}

// TestLibraryCacheConcurrent hammers the singleflight corner cache from
// many goroutines: every caller for one corner must get the same library
// value, and distinct corners distinct libraries.
func TestLibraryCacheConcurrent(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1, W: io.Discard}
	corners := []struct{ tempK, dVth float64 }{
		{233, 0}, {233, 0.03}, {373, 0},
	}
	type got struct {
		corner int
		lib    any
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []got
	)
	for it := 0; it < 8; it++ {
		for ci := range corners {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				lib, err := library(cfg, corners[ci].tempK, corners[ci].dVth)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				results = append(results, got{ci, lib})
				mu.Unlock()
			}(ci)
		}
	}
	wg.Wait()
	first := map[int]any{}
	for _, r := range results {
		if prev, ok := first[r.corner]; ok {
			if prev != r.lib {
				t.Errorf("corner %d: concurrent callers got different library instances", r.corner)
			}
		} else {
			first[r.corner] = r.lib
		}
	}
	for i := range corners {
		for j := range corners {
			if i != j && first[i] == first[j] {
				t.Errorf("corners %d and %d share one library", i, j)
			}
		}
	}
}

// TestRunOrderedEmitsInIndexOrder runs synthetic steps with deliberately
// inverted completion order and asserts the combined report still reads in
// step order, exactly like a serial run.
func TestRunOrderedEmitsInIndexOrder(t *testing.T) {
	var buf bytes.Buffer
	n := 6
	steps := make([]step, n)
	for i := range steps {
		i := i
		steps[i] = step{
			name: fmt.Sprintf("S%d", i),
			run: func(c Config) error {
				time.Sleep(time.Duration(n-i) * 5 * time.Millisecond) // later steps finish first
				c.printf("body %d\n", i)
				return nil
			},
		}
	}
	cfg := Config{W: &buf, Workers: n}
	if err := runOrdered(cfg, steps); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	last := -1
	for i := 0; i < n; i++ {
		pos := strings.Index(out, fmt.Sprintf("body %d", i))
		if pos < 0 {
			t.Fatalf("missing step %d output:\n%s", i, out)
		}
		if pos < last {
			t.Fatalf("step %d emitted out of order:\n%s", i, out)
		}
		last = pos
	}
	for i := 0; i < n; i++ {
		if !strings.Contains(out, fmt.Sprintf("================ S%d ================", i)) {
			t.Errorf("missing header for step %d", i)
		}
	}
}

// TestRunOrderedReportsLowestFailingStep checks error semantics of the
// parallel harness: the reported failure names a failing experiment and
// wraps its error.
func TestRunOrderedReportsLowestFailingStep(t *testing.T) {
	steps := []step{
		{"ok", func(c Config) error { return nil }},
		{"bad", func(c Config) error { return fmt.Errorf("exploded") }},
		{"after", func(c Config) error { return nil }},
	}
	err := runOrdered(Config{W: io.Discard, Workers: 2}, steps)
	if err == nil || !strings.Contains(err.Error(), "bad") || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("err = %v", err)
	}
}
