package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Quick: true, Seed: 1, W: buf}
}

func TestT1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT1(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 6 {
		t.Fatalf("models = %d", len(res.Reports))
	}
	// Shape: at least one non-linear surrogate under 10% MAPE with a
	// >10x speedup over transient simulation.
	good := false
	for _, r := range res.Reports {
		if r.Name != "linear" && r.MAPE < 0.10 && r.Speedup > 10 {
			good = true
		}
	}
	if !good {
		t.Error("no surrogate achieves <10% MAPE at >10x speedup")
	}
	if !strings.Contains(buf.String(), "MAPE") {
		t.Error("table header missing")
	}
}

func TestT2Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT2(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Shape: degradation grows with years and duty.
	byDuty := map[float64][]T2Row{}
	for _, r := range res.Rows {
		byDuty[r.Duty] = append(byDuty[r.Duty], r)
	}
	for duty, rows := range byDuty {
		for i := 1; i < len(rows); i++ {
			if rows[i].DVthMV < rows[i-1].DVthMV {
				t.Errorf("duty %.2f: ΔVth not monotone in years", duty)
			}
		}
	}
	last := func(d float64) T2Row {
		rs := byDuty[d]
		return rs[len(rs)-1]
	}
	if last(1.0).DVthMV <= last(0.25).DVthMV {
		t.Error("higher duty must age more")
	}
}

func TestT3Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT3(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 5 {
		t.Fatalf("models = %d", len(res.Results))
	}
	best := 0.0
	for _, r := range res.Results {
		if r.Accuracy > best {
			best = r.Accuracy
		}
	}
	if best < 0.8 {
		t.Errorf("best wafer classifier accuracy = %.3f", best)
	}
	// HDC (first row) competitive: within 25 points of the best.
	if res.Results[0].Accuracy < best-0.25 {
		t.Errorf("HDC %.3f too far below best %.3f", res.Results[0].Accuracy, best)
	}
}

func TestF1Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF1(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatal("too few points")
	}
	// Shape: the largest dimension is at least as good as the smallest.
	if res.Points[len(res.Points)-1].Accuracy < res.Points[0].Accuracy-0.05 {
		t.Errorf("accuracy did not improve with dimension: %+v", res.Points)
	}
}

func TestF2Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF2(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	rnd := res.Random[len(res.Random)-1].Coverage
	det := res.ATPG[len(res.ATPG)-1].Coverage
	if det < rnd {
		t.Errorf("ATPG final coverage %.3f below random %.3f", det, rnd)
	}
	if det < 0.98 {
		t.Errorf("ATPG coverage = %.3f", det)
	}
	// ATPG uses far fewer patterns than the random baseline.
	if len(res.ATPG) >= len(res.Random) {
		t.Errorf("ATPG patterns %d not fewer than random %d", len(res.ATPG), len(res.Random))
	}
}

func TestT4Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT4(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Result.Efficiency < 0.98 {
			t.Errorf("%s: efficiency %.3f", row.Result.Circuit, row.Result.Efficiency)
		}
	}
}

func TestT5Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT5(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Noise == 0 {
			// Noiseless diagnosis is essentially solved by both rankers.
			if row.Baseline.Top1Rate() < 0.95 {
				t.Errorf("%s noiseless baseline top-1 = %.3f", row.Circuit, row.Baseline.Top1Rate())
			}
		}
		// ML ranking never collapses far below the baseline.
		if row.ML.Top5Rate() < row.Baseline.Top5Rate()-0.15 {
			t.Errorf("%s noise %.2f: ML top-5 %.3f vs baseline %.3f",
				row.Circuit, row.Noise, row.ML.Top5Rate(), row.Baseline.Top5Rate())
		}
	}
}

func TestF3Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF3(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 4 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	best := 0.0
	for _, c := range res.Curves {
		if c.AUC < 0.55 {
			t.Errorf("%s AUC = %.3f barely beats chance", c.Name, c.AUC)
		}
		if c.AUC > best {
			best = c.AUC
		}
	}
	// The multivariate screens must clearly dominate.
	if best < 0.85 {
		t.Errorf("best AUC = %.3f", best)
	}
	if res.Curves[0].AUC >= best {
		t.Error("univariate PAT should not be the best screen on correlated data")
	}
}

func TestT6Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT6(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range res.Reports {
		if !(rep.FreshDelay < rep.WorkloadAware && rep.WorkloadAware < rep.WorstCase) {
			t.Errorf("%s: ordering fresh %.3g / workload %.3g / worst %.3g",
				rep.Circuit, rep.FreshDelay, rep.WorkloadAware, rep.WorstCase)
		}
		if rep.SavingsFrac <= 0.05 {
			t.Errorf("%s: savings %.3f too small", rep.Circuit, rep.SavingsFrac)
		}
	}
}

func TestF4Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF4(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// Distribution centered near the nominal, spread positive.
	if res.Stats.Std <= 0 {
		t.Error("no variation spread")
	}
	lo, hi := res.Nominal*0.8, res.Nominal*1.25
	if res.Stats.Mean < lo || res.Stats.Mean > hi {
		t.Errorf("MC mean %.3g far from nominal %.3g", res.Stats.Mean, res.Nominal)
	}
	if res.MLMAPE > 0.05 {
		t.Errorf("surrogate MAPE = %.3f", res.MLMAPE)
	}
	// Quick mode uses a small circuit where per-sample STA is already
	// cheap; the full-scale run shows the order-of-magnitude gap.
	if res.MLSpeedup < 2 {
		t.Errorf("surrogate speedup = %.1f", res.MLSpeedup)
	}
}

func TestF5Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF5(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HDCErrors) == 0 || len(res.MLPLoss) == 0 {
		t.Fatal("empty series")
	}
	if res.HDCErrors[len(res.HDCErrors)-1] > res.HDCErrors[0] {
		t.Error("HDC errors increased over retraining")
	}
	if res.MLPLoss[len(res.MLPLoss)-1] >= res.MLPLoss[0] {
		t.Error("MLP loss did not decrease")
	}
}

func TestT7Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT7(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	// The event-driven engine kills most of the per-fault work, so on tiny
	// circuits the word-parallel advantage is partly hidden behind the
	// per-pattern good-simulation overhead; the qualitative shape is that
	// word parallelism always wins and wins big on the larger circuit.
	best := 0.0
	for _, row := range res.Rows {
		if row.Speedup < 1.2 {
			t.Errorf("%s: parallel speedup %.1f too small", row.Circuit, row.Speedup)
		}
		if row.Speedup > best {
			best = row.Speedup
		}
		if row.CollapseSaving <= 0.1 {
			t.Errorf("%s: collapsing saved only %.0f%%", row.Circuit, row.CollapseSaving*100)
		}
	}
	if best < 4 {
		t.Errorf("largest parallel speedup %.1f too small", best)
	}
}

func TestRunByName(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("T2", quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if err := Run("bogus", quickCfg(&buf)); err == nil {
		t.Error("unknown experiment must fail")
	}
	if len(Names()) != 16 {
		t.Errorf("names = %v", Names())
	}
}

func TestT8Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT8(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Shape: the random-pattern-resistant comparators gain from test
	// points; no circuit gets worse.
	gained := false
	for _, r := range res.Rows {
		if r.AfterFull < r.Before-0.02 {
			t.Errorf("%s: coverage degraded %.3f -> %.3f", r.Circuit, r.Before, r.AfterFull)
		}
		if r.AfterFull > r.Before+0.05 {
			gained = true
		}
	}
	if !gained {
		t.Error("no circuit gained >5 points from test points")
	}
}

func TestF6Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunF6(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatal("too few points")
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Coverage < res.Points[i-1].Coverage {
			t.Error("BIST coverage decreased with more patterns")
		}
	}
	last := res.Points[len(res.Points)-1]
	if last.Coverage < 0.9 {
		t.Errorf("final BIST coverage = %.3f", last.Coverage)
	}
	if last.Aliased > last.Detected/50+1 {
		t.Errorf("aliasing %d of %d implausibly high", last.Aliased, last.Detected)
	}
}

func TestT9Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT9(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range res.Rows {
		if r.ATPGCov < r.RandomCov-1e-9 {
			t.Errorf("%s: ATPG transition coverage %.3f below random %.3f",
				r.Circuit, r.ATPGCov, r.RandomCov)
		}
		reached := r.ATPGCov + float64(r.Untestable)/float64(r.Faults)
		if reached < 0.9 {
			t.Errorf("%s: transition test efficiency %.3f", r.Circuit, reached)
		}
	}
}

func TestT10Shape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunT10(quickCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatal("too few corners")
	}
	// Leakage grows strictly with temperature, by orders of magnitude.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].LibLeakage <= res.Rows[i-1].LibLeakage {
			t.Error("leakage not increasing with temperature")
		}
	}
	cold, hot := res.Rows[0], res.Rows[len(res.Rows)-1]
	if hot.LibLeakage < 20*cold.LibLeakage {
		t.Errorf("leakage span only %.1fx from %g K to %g K",
			hot.LibLeakage/cold.LibLeakage, cold.TempK, hot.TempK)
	}
	// Delay moves mildly (well under 2x across the whole range).
	if r := hot.MedianDelay / cold.MedianDelay; r < 0.5 || r > 2 {
		t.Errorf("median delay ratio across corners = %f", r)
	}
}
