package experiments

import (
	"fmt"

	"repro/internal/bist"
	"repro/internal/circuit"
)

// F6Point is one sample of the BIST coverage curve.
type F6Point struct {
	Patterns int
	Coverage float64
	Aliased  int
	Detected int
}

// F6Result holds figure F6 (extension: logic BIST).
type F6Result struct {
	Circuit string
	MISRLen int
	Points  []F6Point
}

// RunF6 reproduces figure F6: stuck-at coverage of LFSR-generated patterns
// as the pattern budget grows, with MISR signature aliasing counted at
// every point. Shape: coverage climbs like the random-pattern curve of F2;
// aliasing stays at or near zero for a wide MISR.
func RunF6(cfg Config) (*F6Result, error) {
	c := circuit.ArrayMultiplier(8)
	budgets := []int{16, 32, 64, 128, 256, 512}
	misrLen := 24
	if cfg.Quick {
		c = circuit.ArrayMultiplier(4)
		budgets = []int{16, 64, 256}
		misrLen = 16
	}
	res := &F6Result{Circuit: c.Name, MISRLen: misrLen}
	tw := cfg.table()
	fmt.Fprintf(tw, "patterns\tcoverage\tdetected\taliased\n")
	for _, n := range budgets {
		r, err := bist.Run(c, 32, misrLen, uint64(cfg.Seed)+1, n)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, F6Point{
			Patterns: n, Coverage: r.Coverage, Aliased: r.Aliased, Detected: r.Detected,
		})
		fmt.Fprintf(tw, "%d\t%.2f%%\t%d/%d\t%d\n", n, r.Coverage*100, r.Detected, r.TotalFaults, r.Aliased)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	cfg.printf("MISR length %d → theoretical aliasing probability ≈ 2^-%d per fault\n", misrLen, misrLen)
	return res, nil
}
