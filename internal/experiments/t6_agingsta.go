package experiments

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
)

// T6Result holds the aging-aware STA comparison (table T6).
type T6Result struct {
	Reports []*core.AgingSTAReport
}

// RunT6 reproduces table T6: fresh vs worst-case-aged vs workload-aware vs
// ML-predicted critical path delay at the 10-year mission point. Shape:
// fresh < workload-aware ≈ ML-predicted < worst case, with the workload-
// aware guardband recovering a large share of the static margin.
func RunT6(cfg Config) (*T6Result, error) {
	lib, err := library(cfg, 300, 0)
	if err != nil {
		return nil, err
	}
	suite := []*circuit.Netlist{
		circuit.RippleAdder(16),
		circuit.ArrayMultiplier(8),
		circuit.ALUSlice(8),
	}
	acfg := core.DefaultAgingSTAConfig()
	acfg.Seed = cfg.Seed
	if cfg.Quick {
		suite = []*circuit.Netlist{circuit.RippleAdder(8)}
		acfg.Patterns = 128
		acfg.MLTrainPoints = 200
	}
	res := &T6Result{}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tfresh[ps]\tworst[ps]\tworkload[ps]\tML[ps]\tsavings\tML savings\tML MAPE\tmean duty\n")
	for _, c := range suite {
		rep, err := core.AgingAwareSTA(c, lib, acfg)
		if err != nil {
			return nil, err
		}
		res.Reports = append(res.Reports, rep)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.0f%%\t%.0f%%\t%.2f%%\t%.2f\n",
			rep.Circuit, rep.FreshDelay*1e12, rep.WorstCase*1e12,
			rep.WorkloadAware*1e12, rep.MLPredicted*1e12,
			rep.SavingsFrac*100, rep.MLSavings*100, rep.MLMAPE*100, rep.MeanDuty)
	}
	return res, tw.Flush()
}
