package experiments

import (
	"fmt"

	"repro/internal/aging"
	"repro/internal/core"
)

// T2Row is one mission point of the degradation table.
type T2Row struct {
	Years  float64
	Duty   float64
	DVthMV float64
	Factor float64
}

// T2Result holds the aging-model table (T2).
type T2Result struct {
	Rows []T2Row
}

// RunT2 reproduces table T2: NBTI+HCI threshold shift and delay-degradation
// factor over mission time for three workload duty levels at 350 K / 1 GHz.
func RunT2(cfg Config) (*T2Result, error) {
	model := aging.Default()
	years := []float64{0, 0.5, 1, 2, 5, 10}
	duties := []float64{0.25, 0.50, 1.00}
	res := &T2Result{}
	tw := cfg.table()
	fmt.Fprintf(tw, "duty\tyears\tΔVth[mV]\tdelay factor\n")
	for _, duty := range duties {
		s := aging.Stress{TempK: 350, Duty: duty, Activity: duty / 2, ClockHz: 1e9}
		curve := core.DegradationCurve(model, s, years)
		for _, pt := range curve {
			row := T2Row{Years: pt.Years, Duty: duty, DVthMV: pt.DVth * 1e3, Factor: pt.Factor}
			res.Rows = append(res.Rows, row)
			fmt.Fprintf(tw, "%.2f\t%.1f\t%.1f\t%.4f\n", duty, pt.Years, row.DVthMV, row.Factor)
		}
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	cfg.printf("worst-case 10y guardband factor: %.4f; duty-0.25 workload recovers %.0f%% of the margin\n",
		model.Degradation(aging.WorstCase(10, 350, 1e9)),
		model.GuardbandSavings(aging.Stress{Years: 10, TempK: 350, Duty: 0.25, Activity: 0.125, ClockHz: 1e9})*100)
	return res, nil
}
