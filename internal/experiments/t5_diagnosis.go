package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/diagnosis"
)

// T5Row compares diagnosis ranking on one circuit at one noise level.
type T5Row struct {
	Circuit  string
	Noise    float64
	Baseline diagnosis.Accuracy
	ML       diagnosis.Accuracy
}

// T5Result holds table T5.
type T5Result struct {
	Rows []T5Row
}

// RunT5 reproduces table T5: dictionary-based fault diagnosis with the
// classical Jaccard ranking against the learned candidate ranker, at zero
// and realistic tester-noise levels. Shape: both are near-perfect without
// noise; under noise the learned ranker holds up at least as well.
func RunT5(cfg Config) (*T5Result, error) {
	circuits := []*circuit.Netlist{
		circuit.ArrayMultiplier(4),
		circuit.RippleAdder(8),
	}
	noises := []float64{0, 0.15, 0.30}
	evalN := 80
	if cfg.Quick {
		circuits = circuits[:1]
		noises = []float64{0, 0.2}
		evalN = 30
	}
	res := &T5Result{}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tnoise\tbase top-1\tbase top-5\tML top-1\tML top-5\tmean rank (base→ML)\n")
	for _, c := range circuits {
		acfg := atpg.DefaultConfig()
		acfg.Seed = cfg.Seed
		acfg.Workers = cfg.Workers
		acfg.Words = cfg.Words
		gen, err := atpg.Run(c, acfg)
		if err != nil {
			return nil, err
		}
		d, err := diagnosis.NewWorkersWords(c, gen.Patterns, cfg.Workers, cfg.Words)
		if err != nil {
			return nil, err
		}
		// Disjoint train/eval fault samples among detectable faults.
		var trainSample, evalSample []int
		for i := range d.Faults {
			if d.Dict[i].FailBits() == 0 {
				continue
			}
			if i%3 == 0 && len(trainSample) < 60 {
				trainSample = append(trainSample, i)
			} else if len(evalSample) < evalN {
				evalSample = append(evalSample, i)
			}
		}
		scorer, err := core.TrainDiagnosisScorer(d, gen.Patterns, trainSample, 0.15, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, noise := range noises {
			rngA := rand.New(rand.NewSource(cfg.Seed + 11))
			base, err := d.Evaluate(gen.Patterns, evalSample, noise, rngA.Float64, nil)
			if err != nil {
				return nil, err
			}
			rngB := rand.New(rand.NewSource(cfg.Seed + 11))
			mlAcc, err := d.Evaluate(gen.Patterns, evalSample, noise, rngB.Float64, scorer)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, T5Row{Circuit: c.Name, Noise: noise, Baseline: base, ML: mlAcc})
			fmt.Fprintf(tw, "%s\t%.2f\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.2f→%.2f\n",
				c.Name, noise,
				base.Top1Rate()*100, base.Top5Rate()*100,
				mlAcc.Top1Rate()*100, mlAcc.Top5Rate()*100,
				base.MeanRank, mlAcc.MeanRank)
		}
	}
	return res, tw.Flush()
}
