package experiments

import (
	"fmt"

	"repro/internal/outlier"
)

// F3Curve is one scorer's tradeoff curve with its AUC.
type F3Curve struct {
	Name   string
	AUC    float64
	Points []outlier.Point
}

// F3Result holds figure F3.
type F3Result struct {
	Curves []F3Curve
}

// RunF3 reproduces figure F3: the escape-vs-overkill tradeoff of the three
// outlier screens on a synthetic correlated lot. Shape: every curve trades
// escapes against overkill monotonically; the multivariate screens dominate
// the univariate PAT screen (higher AUC).
func RunF3(cfg Config) (*F3Result, error) {
	lcfg := outlier.DefaultLotConfig()
	if cfg.Quick {
		lcfg.Devices = 600
	}
	lot := outlier.Synthesize(lcfg, cfg.Seed)
	var ref [][]float64
	for i, d := range lot.Defective {
		if !d {
			ref = append(ref, lot.X[i])
		}
	}
	scorers := []struct {
		name string
		s    outlier.Scorer
	}{
		{"zscore-PAT", &outlier.ZScorePAT{}},
		{"mahalanobis", &outlier.Mahalanobis{}},
		{"kNN-10", &outlier.KNNOutlier{K: 10}},
		{"PCA-residual", &outlier.PCAResidual{}},
	}
	res := &F3Result{}
	for _, sc := range scorers {
		if err := sc.s.Fit(ref); err != nil {
			return nil, err
		}
		scores := outlier.ScoreAll(sc.s, lot.X)
		res.Curves = append(res.Curves, F3Curve{
			Name:   sc.name,
			AUC:    outlier.AUC(scores, lot.Defective),
			Points: outlier.Sweep(scores, lot.Defective, 40),
		})
	}
	cfg.printf("lot: %d devices, %d tests, %.1f%% defect rate\n",
		lcfg.Devices, lcfg.Tests, lcfg.DefectRate*100)
	tw := cfg.table()
	fmt.Fprintf(tw, "method\tAUC\tescapes@1%%OK\tescapes@5%%OK\tescapes@10%%OK\n")
	for _, c := range res.Curves {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f%%\t%.1f%%\t%.1f%%\n",
			c.Name, c.AUC,
			escapeAtOverkill(c.Points, 0.01)*100,
			escapeAtOverkill(c.Points, 0.05)*100,
			escapeAtOverkill(c.Points, 0.10)*100)
	}
	return res, tw.Flush()
}

// escapeAtOverkill returns the lowest escape rate achievable within the
// overkill budget.
func escapeAtOverkill(pts []outlier.Point, budget float64) float64 {
	best := 1.0
	for _, p := range pts {
		if p.OverkillRate <= budget && p.EscapeRate < best {
			best = p.EscapeRate
		}
	}
	return best
}
