package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/spice"
)

// T1Result holds the ML-characterization comparison (table T1).
type T1Result struct {
	Corpus  *core.ArcData
	Reports []*core.SurrogateReport
}

// RunT1 reproduces table T1: per-model surrogate error and speedup against
// transistor-level characterization across the cell set, slew/load grid and
// an aging ΔVth sweep.
func RunT1(cfg Config) (*T1Result, error) {
	cells := liberty.BaseCells()
	grid := liberty.DefaultGrid()
	dVths := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	if cfg.Quick {
		cells = cells[:6]
		grid = liberty.CoarseGrid()
		dVths = []float64{0, 0.05, 0.10}
	}
	data, err := core.BuildArcData(cells, spice.Default(300), dVths, grid)
	if err != nil {
		return nil, err
	}
	cfg.printf("ground truth: %d SPICE transients over %d cells, total %v (%v/point)\n",
		data.Runs, len(cells), data.SpiceTime.Round(time.Millisecond),
		(data.SpiceTime / time.Duration(data.Runs)).Round(time.Microsecond))

	res := &T1Result{Corpus: data}
	tw := cfg.table()
	fmt.Fprintf(tw, "model\tMAPE\tRMSE[ps]\tR2\ttrain\tpredict/pt\tspeedup\n")
	for _, mz := range core.ModelZoo(cfg.Seed) {
		_, rep, err := core.TrainSurrogate(mz.Name, mz.New(), data, 0.7, cfg.Seed)
		if err != nil {
			return nil, err
		}
		res.Reports = append(res.Reports, rep)
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.3f\t%.4f\t%v\t%v\t%.1fx\n",
			rep.Name, rep.MAPE*100, rep.RMSE*1e12, rep.R2,
			rep.TrainTime.Round(1e6), rep.PredictPer.Round(10), rep.Speedup)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return res, nil
}
