package experiments

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/circuit"
)

// F2Result holds the coverage-vs-pattern-count curves (figure F2).
type F2Result struct {
	Circuit string
	Random  []atpg.CoveragePoint
	ATPG    []atpg.CoveragePoint
}

// RunF2 reproduces figure F2: stuck-at coverage as a function of applied
// pattern count, random patterns vs the compacted ATPG set. Shape: the
// random curve rises fast then plateaus below the deterministic set, which
// reaches (near-)complete coverage with far fewer patterns.
func RunF2(cfg Config) (*F2Result, error) {
	c := circuit.ArrayMultiplier(8)
	if cfg.Quick {
		c = circuit.ArrayMultiplier(4)
	}
	nRandom := 512
	rnd, err := atpg.RandomOnlyWords(c, nRandom, cfg.Seed, cfg.Workers, cfg.Words)
	if err != nil {
		return nil, err
	}
	acfg := atpg.DefaultConfig()
	acfg.Seed = cfg.Seed
	acfg.Workers = cfg.Workers
	acfg.Words = cfg.Words
	det, err := atpg.Run(c, acfg)
	if err != nil {
		return nil, err
	}
	res := &F2Result{Circuit: c.Name, Random: rnd.CoverageAt, ATPG: det.CoverageAt}

	cfg.printf("circuit %s: %d collapsed faults\n", c.Name, rnd.TotalFaults)
	tw := cfg.table()
	fmt.Fprintf(tw, "patterns\trandom coverage\tATPG coverage\n")
	checkpoints := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	covAt := func(curve []atpg.CoveragePoint, n int) float64 {
		if len(curve) == 0 {
			return 0
		}
		if n > len(curve) {
			n = len(curve)
		}
		return curve[n-1].Coverage
	}
	for _, n := range checkpoints {
		fmt.Fprintf(tw, "%d\t%.2f%%\t%.2f%%\n",
			n, covAt(res.Random, n)*100, covAt(res.ATPG, n)*100)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	cfg.printf("final: random %.2f%% after %d patterns; ATPG %.2f%% with %d patterns (%d redundant, %d aborted)\n",
		rnd.Coverage*100, nRandom, det.Coverage*100, det.Patterns.N, det.Redundant, det.Aborted)
	return res, nil
}
