package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/parallel"
)

// FaultSimBenchRow is one circuit size of the fault-simulation benchmark,
// serialized into BENCH_faultsim.json so the performance trajectory of the
// engine is tracked across PRs in machine-readable form.
type FaultSimBenchRow struct {
	Circuit      string  `json:"circuit"`
	Source       string  `json:"source"`                  // "bench" (named netlist file) or "generated"
	Gates        int     `json:"gates"`                   // logic gates (excluding PIs)
	Faults       int     `json:"faults"`                  // collapsed fault universe
	Patterns     int     `json:"patterns"`                // random patterns simulated
	Words        int     `json:"words"`                   // pattern words packed per cone walk
	CompileNs    float64 `json:"compile_ns"`              // circuit.Compile best-of-N (CSR IR build, excl. levelization)
	PPSFPMs      float64 `json:"ppsfp_ms"`                // event-driven multi-word run, one goroutine
	ConcurrentMs float64 `json:"concurrent_ms"`           // fault shards across workers
	DictMs       float64 `json:"dictionary_ms,omitempty"` // full-signature dictionary (word-sharded across workers); omitted above dictMaxGates where the signature matrix no longer fits
	SerialMs     float64 `json:"serial_ms"`               // one-pattern baseline
	Speedup      float64 `json:"speedup"`                 // serial / ppsfp
	Coverage     float64 `json:"coverage"`
	BitIdentical bool    `json:"bit_identical"`           // DetectedBy of PPSFP == serial baseline == concurrent (a genuine mismatch aborts the sweep)
	MPatFaultsPS float64 `json:"mpattern_faults_per_sec"` // faults × patterns / ppsfp time, in millions
}

// FaultSimBench is the top-level document of BENCH_faultsim.json.
type FaultSimBench struct {
	Schema    string             `json:"schema"` // "itr-faultsim-bench/v1"
	Generated string             `json:"generated"`
	GoVersion string             `json:"go_version"`
	Workers   int                `json:"workers"`
	Quick     bool               `json:"quick"`
	Rows      []FaultSimBenchRow `json:"rows"`
}

// faultSimBenchSizes returns the generated-circuit sizes of the sweep.
func faultSimBenchSizes(quick bool) ([]int, int) {
	if quick {
		return []int{200, 500}, 64
	}
	return []int{500, 2000, 8000, 32000, 100000}, 256
}

// dictMaxGates bounds the circuit size on which the dictionary build is
// measured: the signature matrix is faults × POs × words (hundreds of GB at
// 100k gates), so the dictionary workload — diagnosis — only exists at
// dictionary-feasible sizes and larger rows omit the column.
const dictMaxGates = 8000

// minDuration times fn reps times and returns the fastest run, the standard
// best-of-N benchmark discipline.
func minDuration(reps int, fn func()) time.Duration {
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		d := time.Since(t0)
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

// RunFaultSimBench measures the fault-simulation engine on the named .bench
// anchor netlists under benchDir (sorted by name, mirroring BENCH_atpg.json)
// followed by generated circuits of increasing size, and returns the
// machine-readable benchmark document. Every row carries the one-pattern
// serial baseline, which doubles as the correctness oracle: the PPSFP and
// concurrent DetectedBy must match it bit for bit or the sweep aborts.
func RunFaultSimBench(cfg Config, benchDir string) (*FaultSimBench, error) {
	sizes, patterns := faultSimBenchSizes(cfg.Quick)
	words := fault.NormalizeWords(cfg.Words)
	doc := &FaultSimBench{
		Schema:    "itr-faultsim-bench/v1",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Workers:   parallel.Workers(cfg.Workers),
		Quick:     cfg.Quick,
	}
	cases, err := loadBenchAnchors(benchDir)
	if err != nil {
		return nil, err
	}
	for _, gates := range sizes {
		cases = append(cases, atpgBenchCase{net: circuit.Random(64, gates, 3), source: "generated"})
	}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tgates\tfaults\tpatterns\twords\tppsfp\tconc(%d)\tdict\tserial\tspeedup\tMpat·faults/s\n", doc.Workers)
	for _, bc := range cases {
		c := bc.net
		c.TopoOrder() // levelize once so compileDur isolates the CSR-IR build
		compileDur := minDuration(5, func() {
			if _, err := circuit.Compile(c); err != nil {
				panic(err) // Random netlists always compile; see Compile's contract
			}
		})
		faults := fault.Universe(c)
		rng := rand.New(rand.NewSource(cfg.Seed))
		p := logic.NewPatternSet(len(c.PIs), patterns)
		p.RandFill(rng.Uint64)
		fsim, err := fault.NewSimulatorWords(c, words)
		if err != nil {
			return nil, err
		}
		var rp *fault.Result
		fsim.Run(p, faults) // warm run: fault the allocator, not the timed region
		ppsfp := minDuration(3, func() { rp = fsim.Run(p, faults) })
		var cerr error
		var rc *fault.Result
		conc := minDuration(3, func() { rc, cerr = fault.RunConcurrentWords(c, p, faults, cfg.Workers, words) })
		if cerr != nil {
			return nil, cerr
		}
		for i := range faults {
			if rp.DetectedBy[i] != rc.DetectedBy[i] {
				return nil, fmt.Errorf("benchjson: %s fault %d: concurrent DetectedBy %d != %d",
					c.Name, i, rc.DetectedBy[i], rp.DetectedBy[i])
			}
		}
		row := FaultSimBenchRow{
			Circuit: c.Name, Source: bc.source, Gates: c.NumLogicGates(), Faults: len(faults),
			Patterns:     patterns,
			Words:        fsim.Words(),
			CompileNs:    float64(compileDur.Nanoseconds()),
			PPSFPMs:      float64(ppsfp) / float64(time.Millisecond),
			ConcurrentMs: float64(conc) / float64(time.Millisecond),
			Coverage:     rp.Coverage,
			MPatFaultsPS: float64(len(faults)) * float64(patterns) / ppsfp.Seconds() / 1e6,
		}
		if row.Gates <= dictMaxGates {
			dict := minDuration(2, func() {
				if _, err := fault.DictionaryConcurrentWords(c, p, faults, cfg.Workers, words); err != nil {
					cerr = err
				}
			})
			if cerr != nil {
				return nil, cerr
			}
			row.DictMs = float64(dict) / float64(time.Millisecond)
		}
		var rs *fault.Result
		serial := minDuration(1, func() { rs = fsim.RunSerial(p, faults) })
		row.SerialMs = float64(serial) / float64(time.Millisecond)
		row.Speedup = row.SerialMs / row.PPSFPMs
		row.BitIdentical = true
		for i := range faults {
			if rp.DetectedBy[i] != rs.DetectedBy[i] {
				row.BitIdentical = false
				return nil, fmt.Errorf("benchjson: %s fault %d: PPSFP DetectedBy %d != serial %d",
					c.Name, i, rp.DetectedBy[i], rs.DetectedBy[i])
			}
		}
		doc.Rows = append(doc.Rows, row)
		dictCell := "-"
		if row.DictMs > 0 {
			dictCell = fmt.Sprintf("%.2fms", row.DictMs)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.2fms\t%.2fms\t%s\t%.2fms\t%.1fx\t%.1f\n",
			c.Name, row.Gates, row.Faults, row.Patterns, row.Words, row.PPSFPMs, row.ConcurrentMs,
			dictCell, row.SerialMs, row.Speedup, row.MPatFaultsPS)
	}
	return doc, tw.Flush()
}

// WriteJSON writes the benchmark document to path, indented for diffable
// version-controlled trajectory files.
func (b *FaultSimBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
