package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/logic"
)

// T9Row compares transition-fault testing on one circuit.
type T9Row struct {
	Circuit    string
	Faults     int
	RandomCov  float64 // 256 random patterns as launch/capture pairs
	ATPGCov    float64
	Untestable int
	Aborted    int
	Patterns   int
}

// T9Result holds table T9 (extension: transition/delay faults).
type T9Result struct {
	Rows []T9Row
}

// RunT9 reproduces table T9: transition-fault (gross-delay) coverage of
// random pattern pairs vs the deterministic two-pattern ATPG flow. Shape:
// transition coverage trails stuck-at coverage under the same budget (the
// extra initialization condition), and the deterministic flow closes most
// of the gap, with a small genuinely untestable remainder.
func RunT9(cfg Config) (*T9Result, error) {
	suite := []*circuit.Netlist{
		circuit.RippleAdder(16),
		circuit.ArrayMultiplier(8),
		circuit.ALUSlice(8),
		circuit.Comparator(16),
	}
	nRandom := 256
	if cfg.Quick {
		suite = []*circuit.Netlist{
			circuit.RippleAdder(8),
			circuit.ArrayMultiplier(4),
		}
		nRandom = 64
	}
	res := &T9Result{}
	tw := cfg.table()
	fmt.Fprintf(tw, "circuit\tTDF faults\trandom cov\tATPG cov\tuntestable\taborted\tpatterns\n")
	for _, c := range suite {
		faults := fault.TransitionUniverse(c)
		rng := rand.New(rand.NewSource(cfg.Seed))
		p := logic.NewPatternSet(len(c.PIs), nRandom)
		p.RandFill(rng.Uint64)
		rr, err := fault.SimulateTransitionsWords(c, p, faults, cfg.Workers, cfg.Words)
		if err != nil {
			return nil, err
		}
		acfg := atpg.DefaultConfig()
		acfg.Seed = cfg.Seed
		acfg.BacktrackLim = 2000
		acfg.Workers = cfg.Workers
		acfg.Words = cfg.Words
		ar, err := atpg.RunTransition(c, acfg)
		if err != nil {
			return nil, err
		}
		row := T9Row{
			Circuit: c.Name, Faults: len(faults),
			RandomCov: rr.Coverage, ATPGCov: ar.Coverage,
			Untestable: ar.Untestable, Aborted: ar.Aborted,
			Patterns: ar.Patterns.N,
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(tw, "%s\t%d\t%.2f%%\t%.2f%%\t%d\t%d\t%d\n",
			c.Name, row.Faults, row.RandomCov*100, row.ATPGCov*100,
			row.Untestable, row.Aborted, row.Patterns)
	}
	return res, tw.Flush()
}
