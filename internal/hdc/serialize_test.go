package hdc

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

// trainToy builds a small fitted classifier over random class clusters.
func trainToy(t testing.TB, mode Mode) (*Classifier, []HV) {
	t.Helper()
	const (
		dim      = 512
		nClasses = 4
		perClass = 12
	)
	rng := rand.New(rand.NewSource(5))
	centers := make([]HV, nClasses)
	for i := range centers {
		centers[i] = RandHV(dim, rng)
	}
	var enc []HV
	var labels []int
	for c := 0; c < nClasses; c++ {
		for k := 0; k < perClass; k++ {
			h := centers[c].Clone()
			// Flip a few bits to create intra-class variation.
			for f := 0; f < dim/16; f++ {
				i := rng.Intn(dim)
				h.SetBit(i, !h.Bit(i))
			}
			enc = append(enc, h)
			labels = append(labels, c)
		}
	}
	cls := NewClassifier(dim, nClasses)
	cls.Mode = mode
	if err := cls.Train(enc, labels); err != nil {
		t.Fatal(err)
	}
	cls.Retrain(enc, labels, 5)
	return cls, enc
}

// TestClassifierSerializeRoundTrip pins the registry contract: a reloaded
// classifier predicts bit-identically in both similarity modes and can
// keep retraining.
func TestClassifierSerializeRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeInteger, ModeBinary} {
		cls, enc := trainToy(t, mode)
		data, err := json.Marshal(cls)
		if err != nil {
			t.Fatal(err)
		}
		loaded := &Classifier{}
		if err := json.Unmarshal(data, loaded); err != nil {
			t.Fatal(err)
		}
		if loaded.Dim != cls.Dim || loaded.NClasses != cls.NClasses || loaded.Mode != mode {
			t.Fatalf("mode %v: reloaded header %d/%d/%v", mode, loaded.Dim, loaded.NClasses, loaded.Mode)
		}
		for i, h := range enc {
			if a, b := cls.Predict(h), loaded.Predict(h); a != b {
				t.Fatalf("mode %v: reloaded Predict(%d) = %d, want %d", mode, i, b, a)
			}
		}
		// The accumulators survived, so retraining still works.
		loaded.Retrain(enc[:4], []int{0, 0, 0, 0}, 1)
	}
}

func TestClassifierUnmarshalValidation(t *testing.T) {
	for name, bad := range map[string]string{
		"zero dim":     `{"dim":0,"n_classes":2,"mode":0,"counts":[[],[]],"adds":[0,0]}`,
		"row mismatch": `{"dim":2,"n_classes":2,"mode":0,"counts":[[1,2]],"adds":[1]}`,
		"short counts": `{"dim":3,"n_classes":1,"mode":0,"counts":[[1,2]],"adds":[1]}`,
		"bad mode":     `{"dim":2,"n_classes":1,"mode":9,"counts":[[1,2]],"adds":[1]}`,
		"negative n":   `{"dim":2,"n_classes":1,"mode":0,"counts":[[1,2]],"adds":[-1]}`,
	} {
		if err := json.Unmarshal([]byte(bad), &Classifier{}); err == nil {
			t.Errorf("%s: expected unmarshal error", name)
		}
	}
}

// TestPredictConcurrent hammers one fitted classifier from 8 goroutines
// under the race detector: Predict is documented safe for concurrent
// readers (the serving hot path shares one model across handlers).
func TestPredictConcurrent(t *testing.T) {
	for _, mode := range []Mode{ModeInteger, ModeBinary} {
		cls, enc := trainToy(t, mode)
		want := make([]int, len(enc))
		for i, h := range enc {
			want[i] = cls.Predict(h)
		}
		var wg sync.WaitGroup
		mismatch := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, h := range enc {
					if got := cls.Predict(h); got != want[i] {
						select {
						case mismatch <- "concurrent Predict diverged from serial":
						default:
						}
						return
					}
				}
			}()
		}
		wg.Wait()
		close(mismatch)
		for m := range mismatch {
			t.Error(m)
		}
	}
}
