// Package hdc implements binary hyperdimensional computing (Kanerva-style):
// dense random hypervectors with XOR binding, rotation permutation,
// majority bundling, level (thermometer) encoding of scalars, and an
// associative-memory classifier with perceptron-style online retraining —
// the brain-inspired lightweight classifier the survey applies to
// semiconductor test data (experiments T3/F1/F5).
package hdc

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
)

// HV is a binary hypervector packed into 64-bit words. All vectors taking
// part in one computation must share the same dimension.
type HV []uint64

// Words returns the number of backing words for a dimension.
func Words(dim int) int { return (dim + 63) / 64 }

// NewHV returns an all-zero hypervector of the given dimension.
func NewHV(dim int) HV { return make(HV, Words(dim)) }

// RandHV draws a uniformly random hypervector.
func RandHV(dim int, rng *rand.Rand) HV {
	h := NewHV(dim)
	for i := range h {
		h[i] = rng.Uint64()
	}
	maskTail(h, dim)
	return h
}

func maskTail(h HV, dim int) {
	if r := dim % 64; r != 0 && len(h) > 0 {
		h[len(h)-1] &= (1 << uint(r)) - 1
	}
}

// Bit returns bit i.
func (h HV) Bit(i int) bool { return h[i/64]>>(uint(i)%64)&1 == 1 }

// SetBit sets bit i to v.
func (h HV) SetBit(i int, v bool) {
	if v {
		h[i/64] |= 1 << (uint(i) % 64)
	} else {
		h[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Clone copies the vector.
func (h HV) Clone() HV { return append(HV(nil), h...) }

// Xor returns the binding a ⊕ b as a new vector.
func (h HV) Xor(o HV) HV {
	out := make(HV, len(h))
	for i := range h {
		out[i] = h[i] ^ o[i]
	}
	return out
}

// XorInPlace binds o into h.
func (h HV) XorInPlace(o HV) {
	for i := range h {
		h[i] ^= o[i]
	}
}

// Hamming returns the Hamming distance between two vectors.
func (h HV) Hamming(o HV) int {
	d := 0
	for i := range h {
		d += bits.OnesCount64(h[i] ^ o[i])
	}
	return d
}

// Popcount returns the number of set bits.
func (h HV) Popcount() int {
	c := 0
	for _, w := range h {
		c += bits.OnesCount64(w)
	}
	return c
}

// Permute rotates the vector by k bit positions (cyclic), the standard HDC
// sequence/permutation operator.
func Permute(h HV, dim, k int) HV {
	k = ((k % dim) + dim) % dim
	out := NewHV(dim)
	for i := 0; i < dim; i++ {
		if h.Bit(i) {
			out.SetBit((i+k)%dim, true)
		}
	}
	return out
}

// Bundler accumulates vectors by per-bit vote counting; Binarize yields the
// majority vector. Weighted additions enable perceptron-style updates.
type Bundler struct {
	Dim    int
	counts []int32
	n      int
}

// NewBundler returns an empty accumulator.
func NewBundler(dim int) *Bundler {
	return &Bundler{Dim: dim, counts: make([]int32, dim)}
}

// Add votes the vector in with weight +1.
func (b *Bundler) Add(h HV) { b.AddWeighted(h, 1) }

// AddWeighted votes the vector with the given weight: each set bit adds w
// to its counter, each clear bit subtracts w.
func (b *Bundler) AddWeighted(h HV, w int32) {
	for wi, word := range h {
		base := wi * 64
		end := b.Dim - base
		if end > 64 {
			end = 64
		}
		cnt := b.counts[base : base+end]
		for bit := range cnt {
			if word>>uint(bit)&1 == 1 {
				cnt[bit] += w
			} else {
				cnt[bit] -= w
			}
		}
	}
	b.n++
}

// N returns the number of Add operations applied.
func (b *Bundler) N() int { return b.n }

// Clone returns an independent copy of the accumulator — the basis of
// delta-encoding schemes that start from a shared base bundle.
func (b *Bundler) Clone() *Bundler {
	return &Bundler{Dim: b.Dim, counts: append([]int32(nil), b.counts...), n: b.n}
}

// Binarize thresholds the accumulated counts at zero; exact ties resolve
// deterministically from the bit index parity (avoiding rng state in hot
// paths while staying unbiased across positions).
func (b *Bundler) Binarize() HV {
	out := NewHV(b.Dim)
	for i, c := range b.counts {
		switch {
		case c > 0:
			out.SetBit(i, true)
		case c == 0 && i%2 == 0:
			out.SetBit(i, true)
		}
	}
	return out
}

// ItemMemory deterministically assigns random hypervectors to symbol IDs.
type ItemMemory struct {
	Dim  int
	seed int64
	vecs map[int]HV
}

// NewItemMemory returns an item memory seeded for reproducibility.
func NewItemMemory(dim int, seed int64) *ItemMemory {
	return &ItemMemory{Dim: dim, seed: seed, vecs: make(map[int]HV)}
}

// Get returns the hypervector for symbol id, creating it on first use.
func (m *ItemMemory) Get(id int) HV {
	if h, ok := m.vecs[id]; ok {
		return h
	}
	const mix = int64(0x5851F42D4C957F2D) // splitmix-style odd multiplier
	rng := rand.New(rand.NewSource(m.seed ^ (int64(id)+1)*mix))
	h := RandHV(m.Dim, rng)
	m.vecs[id] = h
	return h
}

// Levels encodes scalars into hypervectors with the thermometer scheme: the
// lowest level is random, each subsequent level flips a fixed slice of
// positions, so Hamming distance grows linearly with level separation.
type Levels struct {
	Dim  int
	Min  float64
	Max  float64
	vecs []HV
}

// NewLevels builds n level vectors spanning [min, max].
func NewLevels(dim, n int, min, max float64, seed int64) *Levels {
	if n < 2 {
		panic(fmt.Sprintf("hdc: need >= 2 levels, got %d", n))
	}
	if max <= min {
		panic(fmt.Sprintf("hdc: invalid level range [%g,%g]", min, max))
	}
	rng := rand.New(rand.NewSource(seed))
	l := &Levels{Dim: dim, Min: min, Max: max, vecs: make([]HV, n)}
	l.vecs[0] = RandHV(dim, rng)
	// Total flips from level 0 to n-1 is dim/2 (orthogonal ends), spread
	// evenly over a random permutation of positions.
	perm := rng.Perm(dim)
	flipsTotal := dim / 2
	for i := 1; i < n; i++ {
		l.vecs[i] = l.vecs[i-1].Clone()
		lo := flipsTotal * (i - 1) / (n - 1)
		hi := flipsTotal * i / (n - 1)
		for _, p := range perm[lo:hi] {
			l.vecs[i].SetBit(p, !l.vecs[i].Bit(p))
		}
	}
	return l
}

// NumLevels returns the quantization granularity.
func (l *Levels) NumLevels() int { return len(l.vecs) }

// Quantize maps x to its level index, clamping outside the range.
func (l *Levels) Quantize(x float64) int {
	n := len(l.vecs)
	idx := int(float64(n) * (x - l.Min) / (l.Max - l.Min))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Vec returns the hypervector of x's level. The returned vector is shared;
// callers must not mutate it.
func (l *Levels) Vec(x float64) HV { return l.vecs[l.Quantize(x)] }

// VecAt returns the hypervector of a level index directly.
func (l *Levels) VecAt(i int) HV { return l.vecs[i] }

// Mode selects how Classifier compares queries with class memories.
type Mode int

// Classifier similarity modes.
const (
	// ModeInteger scores by cosine similarity between the bipolar query and
	// the raw integer class accumulator. It is robust when encodings are
	// strongly correlated (e.g. spatial wafer-map encodings share a large
	// common mode), because magnitude information survives.
	ModeInteger Mode = iota
	// ModeBinary scores by Hamming distance to the binarized prototype —
	// the classical lightweight associative memory.
	ModeBinary
)

// Classifier is an associative memory: one accumulator per class, formed by
// bundling training encodings and refined by perceptron-style retraining.
type Classifier struct {
	Dim      int
	NClasses int
	Mode     Mode
	acc      []*Bundler
	protos   []HV
	norms    []float64 // L2 norms of the accumulators (integer mode)
}

// NewClassifier returns an untrained classifier in ModeInteger.
func NewClassifier(dim, nClasses int) *Classifier {
	c := &Classifier{Dim: dim, NClasses: nClasses}
	c.acc = make([]*Bundler, nClasses)
	for i := range c.acc {
		c.acc[i] = NewBundler(dim)
	}
	return c
}

// Train bundles each encoding into its class accumulator and rebuilds the
// prototypes.
func (c *Classifier) Train(enc []HV, labels []int) error {
	if len(enc) != len(labels) {
		return fmt.Errorf("hdc: %d encodings for %d labels", len(enc), len(labels))
	}
	for i, h := range enc {
		l := labels[i]
		if l < 0 || l >= c.NClasses {
			return fmt.Errorf("hdc: label %d out of range", l)
		}
		c.acc[l].Add(h)
	}
	c.rebuild()
	return nil
}

func (c *Classifier) rebuild() {
	c.protos = make([]HV, c.NClasses)
	c.norms = make([]float64, c.NClasses)
	for i, b := range c.acc {
		c.protos[i] = b.Binarize()
		n := 0.0
		for _, v := range b.counts {
			n += float64(v) * float64(v)
		}
		c.norms[i] = n
	}
}

// Predict returns the best-matching class: minimum Hamming distance to the
// binarized prototype in ModeBinary, maximum cosine similarity against the
// integer accumulator in ModeInteger.
//
// Predict only reads the trained state, so any number of goroutines may
// call it concurrently on one fitted classifier (the serving hot path) as
// long as no Train/Retrain/UnmarshalJSON runs at the same time.
func (c *Classifier) Predict(h HV) int {
	if c.Mode == ModeBinary {
		best, bestD := 0, 1<<62
		for cl, p := range c.protos {
			if p == nil {
				continue
			}
			if d := h.Hamming(p); d < bestD {
				best, bestD = cl, d
			}
		}
		return best
	}
	best, bestS := 0, -1e308
	for cl, b := range c.acc {
		if c.norms[cl] == 0 {
			continue
		}
		// dot(bipolar(h), counts): set bit contributes +count, clear -count.
		var dot int64
		for wi, word := range h {
			base := wi * 64
			end := c.Dim - base
			if end > 64 {
				end = 64
			}
			cnt := b.counts[base : base+end]
			for bit := range cnt {
				if word>>uint(bit)&1 == 1 {
					dot += int64(cnt[bit])
				} else {
					dot -= int64(cnt[bit])
				}
			}
		}
		s := float64(dot) / math.Sqrt(c.norms[cl])
		if s > bestS {
			best, bestS = cl, s
		}
	}
	return best
}

// Retrain performs perceptron-style refinement: for every misclassified
// sample, the true class accumulator is reinforced and the wrongly
// predicted class weakened. It returns the per-epoch error counts
// (experiment F5's convergence curve).
func (c *Classifier) Retrain(enc []HV, labels []int, epochs int) []int {
	errs := make([]int, 0, epochs)
	for e := 0; e < epochs; e++ {
		wrong := 0
		for i, h := range enc {
			pred := c.Predict(h)
			if pred != labels[i] {
				wrong++
				c.acc[labels[i]].AddWeighted(h, 1)
				c.acc[pred].AddWeighted(h, -1)
			}
		}
		c.rebuild()
		errs = append(errs, wrong)
		if wrong == 0 {
			break
		}
	}
	return errs
}
