package hdc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const dim = 1024

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestRandHVBalanced(t *testing.T) {
	h := RandHV(dim, rng())
	pc := h.Popcount()
	if pc < dim/2-dim/8 || pc > dim/2+dim/8 {
		t.Errorf("popcount = %d, not balanced for dim %d", pc, dim)
	}
}

func TestRandomVectorsQuasiOrthogonal(t *testing.T) {
	r := rng()
	a, b := RandHV(dim, r), RandHV(dim, r)
	d := a.Hamming(b)
	if d < dim/2-dim/8 || d > dim/2+dim/8 {
		t.Errorf("random vectors at distance %d, expected ~%d", d, dim/2)
	}
}

func TestXorProperties(t *testing.T) {
	r := rng()
	a, b := RandHV(dim, r), RandHV(dim, r)
	// Binding is its own inverse.
	if got := a.Xor(b).Xor(b); got.Hamming(a) != 0 {
		t.Error("xor not involutive")
	}
	// Binding preserves distance.
	c := RandHV(dim, r)
	if a.Hamming(b) != a.Xor(c).Hamming(b.Xor(c)) {
		t.Error("binding does not preserve distance")
	}
	// In place variant agrees.
	ac := a.Clone()
	ac.XorInPlace(b)
	if ac.Hamming(a.Xor(b)) != 0 {
		t.Error("XorInPlace differs from Xor")
	}
}

func TestBitOps(t *testing.T) {
	h := NewHV(dim)
	h.SetBit(0, true)
	h.SetBit(100, true)
	h.SetBit(dim-1, true)
	if !h.Bit(0) || !h.Bit(100) || !h.Bit(dim-1) || h.Bit(5) {
		t.Error("bit ops broken")
	}
	h.SetBit(100, false)
	if h.Bit(100) {
		t.Error("clear failed")
	}
	if h.Popcount() != 2 {
		t.Errorf("popcount = %d", h.Popcount())
	}
}

func TestPermute(t *testing.T) {
	r := rng()
	a := RandHV(dim, r)
	p := Permute(a, dim, 1)
	if p.Hamming(a) == 0 {
		t.Error("permute by 1 must change the vector")
	}
	if p.Popcount() != a.Popcount() {
		t.Error("permute must preserve popcount")
	}
	// Rotating by dim is identity.
	if Permute(a, dim, dim).Hamming(a) != 0 {
		t.Error("full rotation not identity")
	}
	// Inverse rotation.
	if Permute(p, dim, -1).Hamming(a) != 0 {
		t.Error("negative rotation does not invert")
	}
}

func TestBundlerMajority(t *testing.T) {
	r := rng()
	a, b, c := RandHV(dim, r), RandHV(dim, r), RandHV(dim, r)
	bd := NewBundler(dim)
	bd.Add(a)
	bd.Add(b)
	bd.Add(c)
	m := bd.Binarize()
	// The majority vector is closer to each constituent than random.
	for i, v := range []HV{a, b, c} {
		if d := m.Hamming(v); d > dim/2 {
			t.Errorf("bundle distance to constituent %d = %d", i, d)
		}
	}
	if bd.N() != 3 {
		t.Errorf("N = %d", bd.N())
	}
}

func TestBundlerWeighted(t *testing.T) {
	r := rng()
	a, b := RandHV(dim, r), RandHV(dim, r)
	bd := NewBundler(dim)
	bd.AddWeighted(a, 5)
	bd.AddWeighted(b, 1)
	m := bd.Binarize()
	if m.Hamming(a) != 0 {
		t.Error("weight-5 vector must dominate a single opposing vote")
	}
}

func TestItemMemoryDeterministic(t *testing.T) {
	m1 := NewItemMemory(dim, 7)
	m2 := NewItemMemory(dim, 7)
	if m1.Get(42).Hamming(m2.Get(42)) != 0 {
		t.Error("same seed/id must agree")
	}
	if d := m1.Get(1).Hamming(m1.Get(2)); d < dim/3 {
		t.Errorf("distinct ids too close: %d", d)
	}
	// Cached: same pointer semantics (same contents at least).
	if m1.Get(42).Hamming(m1.Get(42)) != 0 {
		t.Error("cache broken")
	}
}

func TestLevelsSimilarityStructure(t *testing.T) {
	l := NewLevels(dim, 16, 0, 1, 3)
	// Adjacent levels are close; extremes are ~orthogonal.
	dAdj := l.VecAt(0).Hamming(l.VecAt(1))
	dFar := l.VecAt(0).Hamming(l.VecAt(15))
	if dAdj >= dFar {
		t.Errorf("level distances not monotone: adj %d far %d", dAdj, dFar)
	}
	if dFar < dim/3 {
		t.Errorf("extreme levels too close: %d", dFar)
	}
	// Distance grows monotonically with level separation.
	prev := 0
	for i := 1; i < 16; i++ {
		d := l.VecAt(0).Hamming(l.VecAt(i))
		if d < prev {
			t.Fatalf("level distance decreased at %d", i)
		}
		prev = d
	}
}

func TestLevelsQuantize(t *testing.T) {
	l := NewLevels(dim, 10, 0, 1, 1)
	if l.Quantize(-5) != 0 {
		t.Error("below range must clamp to 0")
	}
	if l.Quantize(5) != 9 {
		t.Error("above range must clamp to max")
	}
	if l.Quantize(0.05) != 0 || l.Quantize(0.95) != 9 {
		t.Error("interior quantization wrong")
	}
	if l.NumLevels() != 10 {
		t.Error("NumLevels wrong")
	}
}

func TestLevelsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLevels(dim, 1, 0, 1, 1) },
		func() { NewLevels(dim, 4, 1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// classifier on a synthetic separable task: class = quadrant of a 2D point
// encoded as bind(xLevel, yLevel).
func quadrantData(n int, seed int64) ([]HV, []int) {
	r := rand.New(rand.NewSource(seed))
	lx := NewLevels(dim, 32, -1, 1, 11)
	ly := NewLevels(dim, 32, -1, 1, 22)
	enc := make([]HV, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		x, y := r.Float64()*2-1, r.Float64()*2-1
		enc[i] = lx.Vec(x).Xor(ly.Vec(y))
		q := 0
		if x >= 0 {
			q |= 1
		}
		if y >= 0 {
			q |= 2
		}
		labels[i] = q
	}
	return enc, labels
}

func TestClassifierQuadrants(t *testing.T) {
	enc, labels := quadrantData(400, 5)
	c := NewClassifier(dim, 4)
	if err := c.Train(enc, labels); err != nil {
		t.Fatal(err)
	}
	c.Retrain(enc, labels, 10)
	tenc, tlabels := quadrantData(200, 6)
	correct := 0
	for i := range tenc {
		if c.Predict(tenc[i]) == tlabels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(tenc))
	if acc < 0.8 {
		t.Errorf("quadrant accuracy = %f", acc)
	}
}

func TestRetrainReducesErrors(t *testing.T) {
	enc, labels := quadrantData(300, 7)
	c := NewClassifier(dim, 4)
	if err := c.Train(enc, labels); err != nil {
		t.Fatal(err)
	}
	errs := c.Retrain(enc, labels, 15)
	if len(errs) == 0 {
		t.Fatal("no epochs recorded")
	}
	if errs[len(errs)-1] > errs[0] {
		t.Errorf("retraining increased errors: %v", errs)
	}
}

func TestClassifierValidation(t *testing.T) {
	c := NewClassifier(dim, 2)
	if err := c.Train([]HV{NewHV(dim)}, []int{5}); err == nil {
		t.Error("out-of-range label must fail")
	}
	if err := c.Train([]HV{NewHV(dim)}, []int{0, 1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

// Property: Hamming distance is a metric (symmetry + triangle inequality on
// random triples).
func TestHammingMetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := RandHV(256, r), RandHV(256, r), RandHV(256, r)
		if a.Hamming(b) != b.Hamming(a) {
			return false
		}
		return a.Hamming(c) <= a.Hamming(b)+b.Hamming(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOddDimensionTailMasked(t *testing.T) {
	d := 100
	r := rng()
	h := RandHV(d, r)
	for i := d; i < len(h)*64; i++ {
		if h[i/64]>>(uint(i)%64)&1 == 1 {
			t.Fatal("bits beyond dimension set")
		}
	}
}

func BenchmarkHamming(b *testing.B) {
	r := rng()
	x, y := RandHV(8192, r), RandHV(8192, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Hamming(y)
	}
}

func BenchmarkBundleAdd(b *testing.B) {
	r := rng()
	h := RandHV(8192, r)
	bd := NewBundler(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Add(h)
	}
}
