package hdc

import (
	"fmt"

	"repro/internal/wire"
)

// Canonical binary form of a trained Classifier, the itr-model/v2
// counterpart of the JSON wire form in serialize.go. Field order is fixed
// and every section is length-prefixed, so one trained classifier has
// exactly one encoding and blake2b over the bytes is a usable identity:
//
//	u32 dim
//	u32 n_classes
//	u8  mode
//	per class, in class order:
//	  i64  adds   (Add operation count)
//	  i32s counts (per-bit accumulator votes, exactly dim entries)
//
// The integer accumulators are the complete training state — prototypes
// and norms are derived on load — so a decoded classifier is bit-identical
// to the original in both modes and can keep retraining, exactly like the
// JSON path.

// AppendBinary appends the canonical binary encoding to b.
func (c *Classifier) AppendBinary(b []byte) ([]byte, error) {
	if c.Dim < 1 || c.NClasses < 1 || len(c.acc) != c.NClasses {
		return nil, fmt.Errorf("hdc: cannot serialize classifier with dims %dx%d (%d accumulators)",
			c.Dim, c.NClasses, len(c.acc))
	}
	b = wire.AppendU32(b, uint32(c.Dim))
	b = wire.AppendU32(b, uint32(c.NClasses))
	b = wire.AppendU8(b, uint8(c.Mode))
	for _, acc := range c.acc {
		b = wire.AppendI64(b, int64(acc.n))
		b = wire.AppendI32s(b, acc.counts)
	}
	return b, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (c *Classifier) MarshalBinary() ([]byte, error) { return c.AppendBinary(nil) }

// UnmarshalBinary restores a classifier saved by AppendBinary, rebuilding
// the derived prototypes and norms. It implements
// encoding.BinaryUnmarshaler and enforces the same invariants as the JSON
// loader.
func (c *Classifier) UnmarshalBinary(data []byte) error {
	d := wire.NewDec(data)
	dim := int(d.U32())
	nClasses := int(d.U32())
	mode := Mode(d.U8())
	if err := d.Err(); err != nil {
		return fmt.Errorf("hdc: decode classifier: %w", err)
	}
	if dim < 1 || nClasses < 1 {
		return fmt.Errorf("hdc: invalid classifier dims %dx%d", dim, nClasses)
	}
	if mode != ModeInteger && mode != ModeBinary {
		return fmt.Errorf("hdc: unknown mode %d", mode)
	}
	acc := make([]*Bundler, nClasses)
	for i := range acc {
		n := d.I64()
		counts := d.I32s()
		if err := d.Err(); err != nil {
			return fmt.Errorf("hdc: decode classifier class %d: %w", i, err)
		}
		if n < 0 {
			return fmt.Errorf("hdc: class %d has negative add count %d", i, n)
		}
		if len(counts) != dim {
			return fmt.Errorf("hdc: class %d has %d counts for dim %d", i, len(counts), dim)
		}
		acc[i] = &Bundler{Dim: dim, counts: counts, n: int(n)}
	}
	if err := d.Close(); err != nil {
		return fmt.Errorf("hdc: decode classifier: %w", err)
	}
	c.Dim, c.NClasses, c.Mode, c.acc = dim, nClasses, mode, acc
	c.rebuild()
	return nil
}
