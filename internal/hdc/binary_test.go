package hdc

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/wire"
)

// TestClassifierBinaryRoundTrip pins the itr-model/v2 contract: the
// canonical binary form round-trips bit-identically (decode → re-encode
// yields the same bytes), the reloaded classifier predicts identically in
// both modes, and it can keep retraining.
func TestClassifierBinaryRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeInteger, ModeBinary} {
		cls, enc := trainToy(t, mode)
		data, err := cls.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		loaded := &Classifier{}
		if err := loaded.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
		if loaded.Dim != cls.Dim || loaded.NClasses != cls.NClasses || loaded.Mode != mode {
			t.Fatalf("mode %v: reloaded header %d/%d/%v", mode, loaded.Dim, loaded.NClasses, loaded.Mode)
		}
		again, err := loaded.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("mode %v: re-encode differs (%d vs %d bytes)", mode, len(data), len(again))
		}
		for i, h := range enc {
			if a, b := cls.Predict(h), loaded.Predict(h); a != b {
				t.Fatalf("mode %v: reloaded Predict(%d) = %d, want %d", mode, i, b, a)
			}
		}
		loaded.Retrain(enc[:4], []int{0, 0, 0, 0}, 1)
	}
}

// TestClassifierBinaryMatchesJSON: the two codecs describe the same state —
// a model loaded from JSON and one loaded from binary predict identically.
func TestClassifierBinaryMatchesJSON(t *testing.T) {
	cls, enc := trainToy(t, ModeInteger)
	jsonData, err := json.Marshal(cls)
	if err != nil {
		t.Fatal(err)
	}
	binData, err := cls.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, fromBin := &Classifier{}, &Classifier{}
	if err := json.Unmarshal(jsonData, fromJSON); err != nil {
		t.Fatal(err)
	}
	if err := fromBin.UnmarshalBinary(binData); err != nil {
		t.Fatal(err)
	}
	for i, h := range enc {
		if a, b := fromJSON.Predict(h), fromBin.Predict(h); a != b {
			t.Fatalf("Predict(%d): json %d vs binary %d", i, a, b)
		}
	}
}

func TestClassifierBinaryValidation(t *testing.T) {
	cls, _ := trainToy(t, ModeInteger)
	good, err := cls.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must fail cleanly, never panic.
	for cut := 0; cut < len(good); cut += 7 {
		if err := new(Classifier).UnmarshalBinary(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing bytes are refused (canonical encodings are consumed exactly).
	if err := new(Classifier).UnmarshalBinary(append(append([]byte(nil), good...), 0)); !errors.Is(err, wire.ErrCodec) {
		t.Errorf("trailing byte: err = %v, want ErrCodec", err)
	}
	// A corrupt mode byte is a validation error.
	bad := append([]byte(nil), good...)
	bad[8] = 9 // mode lives after the two u32 dims
	if err := new(Classifier).UnmarshalBinary(bad); err == nil {
		t.Error("mode 9 accepted")
	}
}
