package hdc

import (
	"encoding/json"
	"fmt"
)

// classifierJSON is the wire form of a trained Classifier, the payload
// embedded in itr-model/v1 artifacts. The integer accumulators are the
// complete training state: prototypes and norms are derived on load, so a
// deserialized classifier is bit-identical to the original in both modes
// and can even keep retraining.
type classifierJSON struct {
	Dim      int       `json:"dim"`
	NClasses int       `json:"n_classes"`
	Mode     Mode      `json:"mode"`
	Counts   [][]int32 `json:"counts"` // per-class accumulator votes, len Dim each
	Adds     []int     `json:"adds"`   // per-class Add operation counts
}

// MarshalJSON serializes the full training state (Save half of the model
// registry contract).
func (c *Classifier) MarshalJSON() ([]byte, error) {
	w := classifierJSON{
		Dim:      c.Dim,
		NClasses: c.NClasses,
		Mode:     c.Mode,
		Counts:   make([][]int32, c.NClasses),
		Adds:     make([]int, c.NClasses),
	}
	for i, b := range c.acc {
		w.Counts[i] = b.counts
		w.Adds[i] = b.n
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a classifier saved by MarshalJSON, rebuilding the
// derived prototypes and norms (Load half of the registry contract).
func (c *Classifier) UnmarshalJSON(data []byte) error {
	var w classifierJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("hdc: decode classifier: %w", err)
	}
	if w.Dim < 1 || w.NClasses < 1 {
		return fmt.Errorf("hdc: invalid classifier dims %dx%d", w.Dim, w.NClasses)
	}
	if len(w.Counts) != w.NClasses || len(w.Adds) != w.NClasses {
		return fmt.Errorf("hdc: %d count rows / %d add counts for %d classes",
			len(w.Counts), len(w.Adds), w.NClasses)
	}
	if w.Mode != ModeInteger && w.Mode != ModeBinary {
		return fmt.Errorf("hdc: unknown mode %d", w.Mode)
	}
	acc := make([]*Bundler, w.NClasses)
	for i, counts := range w.Counts {
		if len(counts) != w.Dim {
			return fmt.Errorf("hdc: class %d has %d counts for dim %d", i, len(counts), w.Dim)
		}
		if w.Adds[i] < 0 {
			return fmt.Errorf("hdc: class %d has negative add count %d", i, w.Adds[i])
		}
		acc[i] = &Bundler{Dim: w.Dim, counts: counts, n: w.Adds[i]}
	}
	c.Dim, c.NClasses, c.Mode, c.acc = w.Dim, w.NClasses, w.Mode, acc
	c.rebuild()
	return nil
}
