// Root-level benchmarks: one testing.B target per experiment table/figure
// of DESIGN.md's experiment index. Each benchmark runs the corresponding
// experiment end to end (quick scale, output discarded) and reports its
// headline metric, so `go test -bench=.` regenerates the full study and
// `itrbench -all` prints the full-scale tables.
package repro_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/liberty"
	"repro/internal/spice"
)

func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, Seed: 1, W: io.Discard}
}

// BenchmarkT1CellSurrogate — table T1: ML cell-characterization error and
// speedup against transistor-level simulation.
func BenchmarkT1CellSurrogate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		best := 1.0
		for _, r := range res.Reports {
			if r.MAPE < best {
				best = r.MAPE
			}
		}
		b.ReportMetric(best*100, "best-MAPE-%")
	}
}

// BenchmarkT2Aging — table T2: NBTI/HCI degradation over mission time.
func BenchmarkT2Aging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Factor, "10y-delay-factor")
	}
}

// BenchmarkT3Wafer — table T3: wafer-map classification accuracy and cost.
func BenchmarkT3Wafer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Results[0].Accuracy*100, "hdc-accuracy-%")
	}
}

// BenchmarkF1HDCDim — figure F1: HDC accuracy vs hypervector dimension.
func BenchmarkF1HDCDim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunF1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].Accuracy*100, "max-dim-accuracy-%")
	}
}

// BenchmarkF2Coverage — figure F2: coverage vs pattern count, random vs
// ATPG.
func BenchmarkF2Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunF2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.ATPG)), "atpg-patterns")
	}
}

// BenchmarkT4ATPG — table T4: full ATPG summary with backtrace ablation.
func BenchmarkT4ATPG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for _, row := range res.Rows {
			if row.Result.Efficiency < worst {
				worst = row.Result.Efficiency
			}
		}
		b.ReportMetric(worst*100, "min-efficiency-%")
	}
}

// BenchmarkT5Diagnosis — table T5: diagnosis candidate ranking.
func BenchmarkT5Diagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ML.Top1Rate()*100, "ml-top1-%")
	}
}

// BenchmarkF3Adaptive — figure F3: escape-vs-overkill tradeoff.
func BenchmarkF3Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunF3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, c := range res.Curves {
			if c.AUC > best {
				best = c.AUC
			}
		}
		b.ReportMetric(best, "best-AUC")
	}
}

// BenchmarkT6STA — table T6: aging-aware STA guardbands.
func BenchmarkT6STA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Reports[0].SavingsFrac*100, "margin-savings-%")
	}
}

// BenchmarkF4Variation — figure F4: Monte Carlo delay distribution vs ML
// surrogate.
func BenchmarkF4Variation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunF4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MLMAPE*100, "surrogate-MAPE-%")
	}
}

// BenchmarkF5Convergence — figure F5: HDC/MLP learning convergence.
func BenchmarkF5Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunF5(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.HDCErrors[len(res.HDCErrors)-1]), "final-hdc-errors")
	}
}

// BenchmarkT8TestPoints — table T8 (extension): SCOAP-guided test-point
// insertion payoff.
func BenchmarkT8TestPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		gain := 0.0
		for _, r := range res.Rows {
			if g := r.AfterFull - r.Before; g > gain {
				gain = g
			}
		}
		b.ReportMetric(gain*100, "best-coverage-gain-pts")
	}
}

// BenchmarkT9Transition — table T9 (extension): two-pattern transition-
// fault ATPG vs random pairs.
func BenchmarkT9Transition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ATPGCov*100, "tdf-coverage-%")
	}
}

// BenchmarkT10Corners — table T10 (extension): temperature-corner library
// characterization (delay/leakage vs temperature).
func BenchmarkT10Corners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		span := res.Rows[len(res.Rows)-1].LibLeakage / res.Rows[0].LibLeakage
		b.ReportMetric(span, "leakage-span-x")
	}
}

// BenchmarkF6BIST — figure F6 (extension): LFSR/MISR logic BIST coverage
// and aliasing.
func BenchmarkF6BIST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunF6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Points[len(res.Points)-1].Coverage*100, "final-coverage-%")
	}
}

// BenchmarkParallelCharacterize pits the serial characterization path
// against the worker pool on the same cell set and grid. The sub-benchmark
// ratio is the library-build speedup; results are bit-identical across the
// variants (see liberty's determinism test).
func BenchmarkParallelCharacterize(b *testing.B) {
	cells := liberty.AllCells()
	p := spice.Default(300)
	grid := liberty.CoarseGrid()
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lib, err := liberty.CharacterizeWorkers("bench", cells, p, grid, workers)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(lib.SpiceRuns), "spice-runs")
			}
		})
	}
}

// BenchmarkT7FaultSim — table T7: parallel fault-simulation speedup.
func BenchmarkT7FaultSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunT7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].Speedup, "parallel-speedup")
	}
}
