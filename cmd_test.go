// End-to-end smoke tests for the command-line tools, exercising them the
// way a user would (via `go run`). Kept fast with -quick/coarse flags.
package repro_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// update regenerates the golden files under testdata/golden/ instead of
// comparing against them: go test -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden/")

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// runToolErr runs a tool expecting a non-zero exit and returns its combined
// output for message assertions.
func runToolErr(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go run %v: expected non-zero exit\n%s", args, out)
	}
	return string(out)
}

// TestWordsFlagValidation pins the -words contract at every CLI boundary:
// a lane width outside {1,2,4,8} must be rejected up front with a usage
// error, not silently normalized into a different benchmark configuration.
func TestWordsFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"itrbench", []string{"./cmd/itrbench", "-words", "3", "-exp", "T2", "-quick"}},
		{"itratpg", []string{"./cmd/itratpg", "-words", "0", "-gen", "c17"}},
		{"itrcluster", []string{"./cmd/itrcluster", "coordinator", "-words", "16", "-workers", "1", "-gen", "c17"}},
	} {
		out := runToolErr(t, tc.args...)
		if !strings.Contains(out, "must be 1, 2, 4 or 8") {
			t.Errorf("%s: missing words usage error:\n%s", tc.name, out)
		}
	}
}

// TestItrclusterLoopbackVerify drives the full distributed flow from the CLI:
// a coordinator with two in-process loopback workers shards each job kind,
// merges, and -verify gates the exit status on bit-identity with the serial
// engine.
func TestItrclusterLoopbackVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, job := range []string{"detect", "dictionary"} {
		out := runTool(t, "./cmd/itrcluster", "coordinator",
			"-workers", "2", "-gen", "rand8.150.3", "-job", job,
			"-patterns", "192", "-shard-faults", "16", "-verify", "-quiet")
		for _, needle := range []string{job + ":", "result hash:", "verify: OK (bit-identical to serial)", "shards dispatched"} {
			if !strings.Contains(out, needle) {
				t.Errorf("itrcluster %s output missing %q:\n%s", job, needle, out)
			}
		}
	}
}

// TestItrclusterJournalResume drives the crash/resume flow from the CLI: a
// journaled run is chaos-killed mid-job (real process exit, status 3), then
// a second invocation resumes from the journal and must still be
// bit-identical to the serial engine.
func TestItrclusterJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	journal := filepath.Join(t.TempDir(), "job.journal")
	common := []string{"./cmd/itrcluster", "coordinator",
		"-workers", "2", "-gen", "rand8.150.3", "-job", "detect",
		"-patterns", "192", "-shard-faults", "16", "-journal", journal, "-quiet"}
	out := runToolErr(t, append(common, "-chaos-kill", "after-result-before-journal-sync:3")...)
	if !strings.Contains(out, "chaos: crashing at after-result-before-journal-sync") {
		t.Fatalf("kill run did not hit the crash point:\n%s", out)
	}
	if fi, err := os.Stat(journal); err != nil || fi.Size() == 0 {
		t.Fatalf("journal after crash: %v (size %v)", err, fi)
	}
	out = runTool(t, append(common, "-resume", "-verify")...)
	for _, needle := range []string{"journal: resuming", "verify: OK (bit-identical to serial)"} {
		if !strings.Contains(out, needle) {
			t.Errorf("resume output missing %q:\n%s", needle, out)
		}
	}

	// A journal must never resume a different job: same file, different
	// circuit is a typed refusal, not a wrong merge.
	out = runToolErr(t, "./cmd/itrcluster", "coordinator",
		"-workers", "1", "-gen", "rand8.150.4", "-job", "detect",
		"-patterns", "192", "-shard-faults", "16",
		"-journal", journal, "-resume", "-quiet")
	if !strings.Contains(out, "journal does not match job") {
		t.Errorf("mismatched resume not refused:\n%s", out)
	}
}

func TestItrbenchQuickT2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runTool(t, "./cmd/itrbench", "-exp", "T2", "-quick")
	for _, needle := range []string{"ΔVth", "delay factor", "total runtime"} {
		if !strings.Contains(out, needle) {
			t.Errorf("itrbench output missing %q:\n%s", needle, out)
		}
	}
}

func TestItratpgGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runTool(t, "./cmd/itratpg", "-gen", "c17")
	for _, needle := range []string{"coverage 100.00%", "patterns:"} {
		if !strings.Contains(out, needle) {
			t.Errorf("itratpg output missing %q:\n%s", needle, out)
		}
	}
}

func TestItratpgBenchFile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := dir + "/c17.bench"
	src := `INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`
	if err := writeFile(path, src); err != nil {
		t.Fatal(err)
	}
	patPath := dir + "/pats.txt"
	out := runTool(t, "./cmd/itratpg", "-bench", path, "-patterns", patPath)
	if !strings.Contains(out, "coverage 100.00%") {
		t.Errorf("bench-file ATPG output:\n%s", out)
	}
}

func TestItrwaferShow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runTool(t, "./cmd/itrwafer", "-show", "Center", "-size", "24")
	if !strings.Contains(out, "class: Center") || !strings.Contains(out, "X") {
		t.Errorf("itrwafer -show output:\n%s", out)
	}
}

// TestItrwaferExportImport round-trips a model artifact through the CLI:
// train + export, then import + evaluate. Determinism makes the imported
// run reproducible, so two imports must print byte-identical reports (the
// bit-identity of reloaded predictions is pinned at library level in
// internal/core and internal/hdc).
func TestItrwaferExportImport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "wafer.json")
	common := []string{"-dim", "512", "-size", "16", "-seed", "5"}
	out := runTool(t, append([]string{"./cmd/itrwafer", "-export", path, "-train", "2"}, common...)...)
	if !strings.Contains(out, "wrote wafer-hdc artifact v1") {
		t.Fatalf("export output:\n%s", out)
	}
	imp := func() string {
		return runTool(t, append([]string{"./cmd/itrwafer", "-import", path, "-test", "2"}, common...)...)
	}
	out = imp()
	for _, needle := range []string{`loaded wafer-hdc "itrwafer-hdc" v1`, "accuracy"} {
		if !strings.Contains(out, needle) {
			t.Errorf("import output missing %q:\n%s", needle, out)
		}
	}
	if again := imp(); again != out {
		t.Errorf("imported model is not deterministic:\nfirst:\n%s\nsecond:\n%s", out, again)
	}
}

// TestItrwaferExportImportV2 pins the binary artifact path end to end: an
// ".itm" export writes the itr-model/v2 format, import sniffs it, and the
// evaluation report matches the v1 JSON export of the identical model
// line for line (same training seed, same predictions — only the file
// format differs).
func TestItrwaferExportImportV2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "wafer.json")
	binPath := filepath.Join(dir, "wafer.itm")
	common := []string{"-dim", "512", "-size", "16", "-seed", "5", "-train", "2"}
	runTool(t, append([]string{"./cmd/itrwafer", "-export", jsonPath}, common...)...)
	out := runTool(t, append([]string{"./cmd/itrwafer", "-export", binPath}, common...)...)
	if !strings.Contains(out, "itr-model/v2") || !strings.Contains(out, "hash ") {
		t.Fatalf("v2 export output:\n%s", out)
	}
	imp := func(path string) string {
		return runTool(t, "./cmd/itrwafer", "-import", path, "-size", "16", "-seed", "5", "-test", "2")
	}
	fromJSON, fromBin := imp(jsonPath), imp(binPath)
	if fromJSON != fromBin {
		t.Errorf("v1 and v2 imports of the same model diverge:\njson:\n%s\nitm:\n%s", fromJSON, fromBin)
	}
}

// TestItrserveMigrate drives the one-shot v1 -> v2 conversion the way an
// operator would: export a JSON artifact, migrate the directory, check the
// report (sizes + content hash), the .v1.bak backup, and that the migrated
// .itm still imports with identical results.
func TestItrserveMigrate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "wafer.json")
	common := []string{"-dim", "512", "-size", "16", "-seed", "5", "-train", "2"}
	runTool(t, append([]string{"./cmd/itrwafer", "-export", jsonPath}, common...)...)
	before := runTool(t, "./cmd/itrwafer", "-import", jsonPath, "-size", "16", "-seed", "5", "-test", "2")

	out := runTool(t, "./cmd/itrserve", "-migrate", dir)
	for _, needle := range []string{"wafer.json -> wafer.itm:", "hash ", "migrated 1 artifacts (0 skipped)"} {
		if !strings.Contains(out, needle) {
			t.Errorf("migrate output missing %q:\n%s", needle, out)
		}
	}
	if _, err := os.Stat(jsonPath + ".v1.bak"); err != nil {
		t.Errorf("backup missing: %v", err)
	}
	if _, err := os.Stat(jsonPath); !os.IsNotExist(err) {
		t.Error("original .json still present after migration")
	}
	after := runTool(t, "./cmd/itrwafer", "-import", filepath.Join(dir, "wafer.itm"),
		"-size", "16", "-seed", "5", "-test", "2")
	if before != after {
		t.Errorf("migrated model evaluates differently:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// normalizeGolden strips the parts of harness output that legitimately vary
// between runs (wall-clock timings); everything else must be byte-stable.
func normalizeGolden(out string) string {
	lines := strings.Split(out, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "total runtime:") {
			l = "total runtime: <elapsed>"
		}
		// itratpg: "backtracks: 12, runtime: 34ms" — keep the deterministic
		// backtrack count, normalize the timing half.
		if strings.HasPrefix(l, "backtracks:") {
			if i := strings.Index(l, ", runtime:"); i >= 0 {
				l = l[:i] + ", runtime: <elapsed>"
			}
		}
		// itratpg: "deterministic phase: gen 1.2ms, drop 3.4ms" is pure
		// wall-clock measurement.
		if strings.HasPrefix(l, "deterministic phase:") {
			l = "deterministic phase: <elapsed>"
		}
		kept = append(kept, l)
	}
	return strings.Join(kept, "\n")
}

// TestItratpgGolden pins the exact ATPG report for a deterministic run:
// itratpg -gen mul4 -seed 1 must reproduce the captured pattern counts,
// coverage and backtrack totals byte for byte (runtime normalized). Any
// drift in PODEM decision order, SCOAP guidance, fault simulation or
// compaction shows up here. Regenerate with -update.
func TestItratpgGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := normalizeGolden(runTool(t, "./cmd/itratpg", "-gen", "mul4", "-seed", "1"))
	compareGolden(t, out, filepath.Join("testdata", "golden", "itratpg_mul4_seed1.txt"))
}

// TestItratpgGoldenParallelInvariant pins the flow's determinism contract at
// the CLI boundary: cranking -workers and -words to the top of the grid, or
// selecting the -serial reference flow, must reproduce the default run's
// report byte for byte (timings normalized) — the same golden file as
// TestItratpgGolden, on purpose.
func TestItratpgGoldenParallelInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	golden := filepath.Join("testdata", "golden", "itratpg_mul4_seed1.txt")
	for _, extra := range [][]string{
		{"-workers", "8", "-words", "8"},
		{"-workers", "3", "-words", "2"},
		{"-serial"},
	} {
		args := append([]string{"./cmd/itratpg", "-gen", "mul4", "-seed", "1"}, extra...)
		out := normalizeGolden(runTool(t, args...))
		if *update {
			continue // TestItratpgGolden owns regeneration
		}
		compareGolden(t, out, golden)
	}
}

// TestItrbenchGoldenT2 pins the exact harness output for a deterministic
// experiment: itrbench -exp T2 -quick -seed 1 must reproduce the captured
// report byte for byte (timings normalized). Regenerate with -update.
func TestItrbenchGoldenT2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := normalizeGolden(runTool(t, "./cmd/itrbench", "-exp", "T2", "-quick", "-seed", "1"))
	compareGolden(t, out, filepath.Join("testdata", "golden", "itrbench_T2_quick_seed1.txt"))
}

// TestItrbenchBenchJSONGolden pins the machine-readable benchmark document:
// itrbench -benchjson -quick -seed 1 -words 8 -workers 2 must emit valid
// itr-faultsim-bench/v1 JSON covering the named .bench anchors under
// testdata/bench/ plus the generated tier, with deterministic fields
// (schema, sizes, fault counts, lane width, coverage, bit-identity, source)
// matching the golden file
// byte for byte. Runtime-dependent fields (timings, throughput, generated
// stamp, toolchain version) are sanity-checked, then normalized to stable
// placeholders before comparison. Regenerate with -update.
func TestItrbenchBenchJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	out := runTool(t, "./cmd/itrbench", "-benchjson", path, "-quick", "-seed", "1", "-words", "8", "-workers", "2")
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("itrbench did not report writing %s:\n%s", path, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc experiments.FaultSimBench
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("benchjson output is not valid JSON: %v", err)
	}
	if doc.Schema != "itr-faultsim-bench/v1" {
		t.Fatalf("schema = %q, want itr-faultsim-bench/v1", doc.Schema)
	}
	if doc.Generated == "" || doc.GoVersion == "" {
		t.Fatalf("missing generated/go_version stamps: %+v", doc)
	}
	anchors := 0
	for i := range doc.Rows {
		r := &doc.Rows[i]
		if r.Source == "bench" {
			anchors++
		}
		// Every row must carry real measurements and the bit-identity
		// verdict before the values are normalized away.
		if r.CompileNs <= 0 || r.PPSFPMs <= 0 || r.ConcurrentMs <= 0 ||
			r.SerialMs <= 0 || r.Speedup <= 0 || r.MPatFaultsPS <= 0 {
			t.Errorf("row %d (%s): non-positive timing fields: %+v", i, r.Circuit, *r)
		}
		if r.DictMs <= 0 {
			t.Errorf("row %d (%s): quick sizes are dictionary-feasible, dictionary_ms missing", i, r.Circuit)
		}
		if !r.BitIdentical {
			t.Errorf("row %d (%s): bit_identical = false", i, r.Circuit)
		}
		r.CompileNs, r.PPSFPMs, r.ConcurrentMs, r.DictMs = 0, 0, 0, 0
		r.SerialMs, r.Speedup, r.MPatFaultsPS = 0, 0, 0
	}
	if anchors < 3 {
		t.Errorf("only %d named .bench anchor rows, want the 3 under testdata/bench/", anchors)
	}
	doc.Generated, doc.GoVersion = "<generated>", "<go_version>"
	norm, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, string(norm)+"\n", filepath.Join("testdata", "golden", "itrbench_benchjson_quick.json"))
}

// TestItratpgBenchJSONGolden pins the ATPG benchmark document: itratpg
// -benchjson -quick -seed 1 -words 8 -workers 2 must emit valid
// itr-atpg-bench/v1 JSON covering the named .bench anchors under
// testdata/bench/ plus the quick generated tier, with the batched flow
// verified bit-identical to the serial reference on every row. Timing
// fields are sanity-checked, then normalized to stable placeholders before
// comparison. Regenerate with -update.
func TestItratpgBenchJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "atpg.json")
	out := runTool(t, "./cmd/itratpg", "-benchjson", path, "-quick", "-seed", "1", "-words", "8", "-workers", "2")
	if !strings.Contains(out, "wrote ") {
		t.Fatalf("itratpg did not report writing %s:\n%s", path, out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc experiments.ATPGBench
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("benchjson output is not valid JSON: %v", err)
	}
	if doc.Schema != "itr-atpg-bench/v1" {
		t.Fatalf("schema = %q, want itr-atpg-bench/v1", doc.Schema)
	}
	if doc.Generated == "" || doc.GoVersion == "" {
		t.Fatalf("missing generated/go_version stamps: %+v", doc)
	}
	anchors := 0
	for i := range doc.Rows {
		r := &doc.Rows[i]
		if r.Source == "bench" {
			anchors++
		}
		if r.DetMs <= 0 || r.SerialDetMs <= 0 {
			t.Errorf("row %d (%s): non-positive deterministic-phase timings: %+v", i, r.Circuit, *r)
		}
		if !r.DeterminismVerified {
			t.Errorf("row %d (%s): determinism_verified = false", i, r.Circuit)
		}
		r.GenNs, r.DropNs, r.DetMs, r.SerialDetMs, r.Speedup = 0, 0, 0, 0, 0
	}
	if anchors < 3 {
		t.Errorf("only %d named .bench anchor rows, want the 3 under testdata/bench/", anchors)
	}
	doc.Generated, doc.GoVersion = "<generated>", "<go_version>"
	norm, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, string(norm)+"\n", filepath.Join("testdata", "golden", "itratpg_benchjson_quick.json"))
}

// compareGolden checks normalized tool output against a golden file, or
// rewrites the file under -update.
func compareGolden(t *testing.T, out, path string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := writeFile(path, out); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", path)
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update`): %v", err)
	}
	want := string(wantBytes)
	if out == want {
		return
	}
	// Report the first diverging line, not a wall of text.
	gotLines, wantLines := strings.Split(out, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "<eof>", "<eof>"
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("golden mismatch at line %d:\n got: %s\nwant: %s\n(regenerate with -update if the change is intended)", i+1, g, w)
		}
	}
	t.Fatal(fmt.Sprintf("output differs from golden file %s in whitespace only", path))
}
