// End-to-end smoke tests for the command-line tools, exercising them the
// way a user would (via `go run`). Kept fast with -quick/coarse flags.
package repro_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

func runTool(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestItrbenchQuickT2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runTool(t, "./cmd/itrbench", "-exp", "T2", "-quick")
	for _, needle := range []string{"ΔVth", "delay factor", "total runtime"} {
		if !strings.Contains(out, needle) {
			t.Errorf("itrbench output missing %q:\n%s", needle, out)
		}
	}
}

func TestItratpgGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runTool(t, "./cmd/itratpg", "-gen", "c17")
	for _, needle := range []string{"coverage 100.00%", "patterns:"} {
		if !strings.Contains(out, needle) {
			t.Errorf("itratpg output missing %q:\n%s", needle, out)
		}
	}
}

func TestItratpgBenchFile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	path := dir + "/c17.bench"
	src := `INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`
	if err := writeFile(path, src); err != nil {
		t.Fatal(err)
	}
	patPath := dir + "/pats.txt"
	out := runTool(t, "./cmd/itratpg", "-bench", path, "-patterns", patPath)
	if !strings.Contains(out, "coverage 100.00%") {
		t.Errorf("bench-file ATPG output:\n%s", out)
	}
}

func TestItrwaferShow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runTool(t, "./cmd/itrwafer", "-show", "Center", "-size", "24")
	if !strings.Contains(out, "class: Center") || !strings.Contains(out, "X") {
		t.Errorf("itrwafer -show output:\n%s", out)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
