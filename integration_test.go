// Cross-module integration tests: flows that span several subsystems, the
// way a downstream user would chain them.
package repro_test

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/diagnosis"
	"repro/internal/fault"
	"repro/internal/liberty"
	"repro/internal/logic"
	"repro/internal/spice"
	"repro/internal/sta"
)

var (
	ilibOnce sync.Once
	ilib     *liberty.Library
	ilibErr  error
)

func integrationLib(t testing.TB) *liberty.Library {
	t.Helper()
	ilibOnce.Do(func() {
		ilib, ilibErr = liberty.Characterize("int300", liberty.AllCells(),
			spice.Default(300), liberty.CoarseGrid())
	})
	if ilibErr != nil {
		t.Fatal(ilibErr)
	}
	return ilib
}

// TestLibRoundTripPreservesSTA serializes a characterized library to
// Liberty text, parses it back, and checks that static timing analysis is
// bit-identical — the property a cached corner must satisfy.
func TestLibRoundTripPreservesSTA(t *testing.T) {
	lib := integrationLib(t)
	var buf bytes.Buffer
	if err := lib.WriteLib(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := liberty.ParseLib(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(8),
		circuit.ALUSlice(4),
	} {
		a1, err := sta.New(c, lib)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := sta.New(c, back)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := a1.Run()
		if err != nil {
			t.Fatal(err)
		}
		t2, err := a2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(t1.WCDelay-t2.WCDelay) / t1.WCDelay; rel > 1e-6 {
			t.Errorf("%s: delay changed through Liberty round trip: %g vs %g",
				c.Name, t1.WCDelay, t2.WCDelay)
		}
	}
}

// TestATPGPatternsDriveDiagnosis chains ATPG → fault injection → diagnosis
// and requires the injected fault to be recovered at a top rank.
func TestATPGPatternsDriveDiagnosis(t *testing.T) {
	n := circuit.RippleAdder(6)
	gen, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gen.Coverage < 0.99 {
		t.Fatalf("coverage %.3f too low for diagnosis study", gen.Coverage)
	}
	d, err := diagnosis.New(n, gen.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	hits := 0
	cases := 0
	for fi := 0; fi < len(d.Faults) && cases < 25; fi += 4 {
		if d.Dict[fi].FailBits() == 0 {
			continue
		}
		cases++
		obs, err := diagnosis.Observe(n, gen.Patterns, d.Faults[fi], 0, rng.Float64)
		if err != nil {
			t.Fatal(err)
		}
		cands := d.Diagnose(obs, nil)
		if r := d.HitRank(cands, fi); r >= 1 && r <= 3 {
			hits++
		}
	}
	if hits < cases*9/10 {
		t.Errorf("only %d/%d injected faults recovered in top-3", hits, cases)
	}
}

// TestBenchFileToFullFlow writes a generated circuit to .bench text, parses
// it back, and runs the whole test flow on the reparsed netlist.
func TestBenchFileToFullFlow(t *testing.T) {
	orig := circuit.ALUSlice(4)
	var buf bytes.Buffer
	if err := orig.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := circuit.ParseBenchString(buf.String(), "alu4-reparsed")
	if err != nil {
		t.Fatal(err)
	}
	res, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency < 0.99 {
		t.Errorf("efficiency %.3f on reparsed netlist", res.Efficiency)
	}
	// STA must also accept the reparsed netlist.
	an, err := sta.New(n, integrationLib(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestAgedCornerSlowsEveryCircuit characterizes an aged corner library and
// checks STA reports strictly slower timing than the fresh corner for every
// benchmark circuit — the cross-stack consistency behind experiment T6.
func TestAgedCornerSlowsEveryCircuit(t *testing.T) {
	fresh := integrationLib(t)
	p := spice.Default(300)
	p.DVthN, p.DVthP = 0.05, 0.05
	aged, err := liberty.Characterize("aged300", liberty.AllCells(), p, liberty.CoarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*circuit.Netlist{
		circuit.MustC17(),
		circuit.RippleAdder(8),
		circuit.ArrayMultiplier(4),
	} {
		af, err := sta.New(c, fresh)
		if err != nil {
			t.Fatal(err)
		}
		aa, err := sta.New(c, aged)
		if err != nil {
			t.Fatal(err)
		}
		tf, err := af.Run()
		if err != nil {
			t.Fatal(err)
		}
		ta, err := aa.Run()
		if err != nil {
			t.Fatal(err)
		}
		if ta.WCDelay <= tf.WCDelay {
			t.Errorf("%s: aged corner (%g) not slower than fresh (%g)",
				c.Name, ta.WCDelay, tf.WCDelay)
		}
	}
}

// TestPatternSetReuseAcrossEngines verifies logic/fault/atpg agree on the
// meaning of a pattern set: patterns exported from ATPG re-simulate to the
// same coverage through an independently constructed fault simulator.
func TestPatternSetReuseAcrossEngines(t *testing.T) {
	n := circuit.ArrayMultiplier(4)
	gen, err := atpg.Run(n, atpg.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Serialize to text and back, like itratpg -patterns does.
	texts := make([]string, gen.Patterns.N)
	for k := range texts {
		texts[k] = logic.FormatBits(gen.Patterns.Pattern(k))
	}
	p := logic.NewPatternSet(len(n.PIs), 0)
	for _, line := range texts {
		bits, err := logic.ParseBits(line)
		if err != nil {
			t.Fatal(err)
		}
		p.Append(bits)
	}
	fsim, err := fault.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	r := fsim.Run(p, fault.Universe(n))
	if r.Detected != gen.Detected {
		t.Errorf("re-simulated coverage %d != ATPG-reported %d", r.Detected, gen.Detected)
	}
}
