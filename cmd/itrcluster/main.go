// Command itrcluster runs distributed PPSFP fault simulation and fault-
// dictionary construction: a coordinator partitions the job into shards and
// any number of workers — in-process, local processes, or remote machines —
// execute them. The merged result is bit-identical to the single-process
// serial engine for any worker count, shard size or failure schedule
// (workers may be killed and restarted mid-run; shards re-dispatch).
//
// Usage:
//
//	# everything in one process: coordinator plus 2 loopback workers
//	itrcluster coordinator -workers 2 -gen rand32.2000.1 -job dictionary -verify
//
//	# distributed: coordinator on a TCP port, workers join from anywhere
//	itrcluster coordinator -listen :9123 -gen mul8 -job detect -verify
//	itrcluster worker -connect host:9123 -id w1
//	itrcluster worker -connect host:9123 -id w2
package main

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/circuit"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/logic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "coordinator":
		runCoordinator(os.Args[2:])
	case "worker":
		runWorker(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  itrcluster coordinator [-listen addr] [-workers N] (-gen spec | -bench file) [options]
  itrcluster worker -connect addr [-id name]

run "itrcluster coordinator -h" or "itrcluster worker -h" for options
`)
	os.Exit(2)
}

func runCoordinator(args []string) {
	fs := flag.NewFlagSet("itrcluster coordinator", flag.ExitOnError)
	var (
		listen      = fs.String("listen", "", "TCP address to accept remote workers on (empty: loopback workers only)")
		nWorkers    = fs.Int("workers", 0, "in-process loopback workers to start (0 with -listen: remote workers only)")
		gen         = fs.String("gen", "", "built-in circuit spec: c17, adderN, mulN, aluN, cmpN, parityN, decN, gparityU.C.E, randI.G.S")
		benchPath   = fs.String("bench", "", "path to a .bench netlist")
		job         = fs.String("job", "detect", "job kind: detect or dictionary")
		patterns    = fs.Int("patterns", 256, "random patterns to simulate")
		seed        = fs.Int64("seed", 1, "random seed for the pattern set")
		words       = fs.Int("words", 8, "fault-simulation lane width on the workers, one of 1/2/4/8")
		shardFaults = fs.Int("shard-faults", 256, "faults per shard (detect jobs)")
		shardWords  = fs.Int("shard-words", 0, "pattern words per shard, rounded up to a lane-width block (dictionary jobs; 0: one block)")
		deadline    = fs.Duration("deadline", 10*time.Second, "per-shard straggler deadline before re-dispatch")
		timeout     = fs.Duration("timeout", 0, "overall job timeout (0: none)")
		verify      = fs.Bool("verify", false, "rerun the job on the local serial engine and require bit-identity")
		quiet       = fs.Bool("quiet", false, "suppress progress logging")
		journalPath = fs.String("journal", "", "write-ahead journal file: checkpoint every verified shard so the job can resume after a coordinator crash")
		resume      = fs.Bool("resume", false, "resume from -journal instead of starting fresh (the journal must match the job exactly)")
		chaosKill   = fs.String("chaos-kill", "", fmt.Sprintf("deterministic chaos: exit(3) at the Nth hit of a named crash point, \"point:N\" (points: %s)", strings.Join(chaos.CrashPoints, ", ")))
	)
	fs.Parse(args)
	if fault.NormalizeWords(*words) != *words {
		fmt.Fprintf(os.Stderr, "itrcluster: invalid -words %d: must be 1, 2, 4 or 8\n", *words)
		os.Exit(2)
	}
	if *nWorkers <= 0 && *listen == "" {
		fatal(fmt.Errorf("no workers: need -workers N and/or -listen addr"))
	}

	n, err := loadCircuit(*benchPath, *gen)
	if err != nil {
		fatal(err)
	}
	fmt.Println(n.Stats())
	faults := fault.Universe(n)
	rng := rand.New(rand.NewSource(*seed))
	p := logic.NewPatternSet(len(n.PIs), *patterns)
	p.RandFill(rng.Uint64)

	logf := func(string, ...any) {}
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	cfg := cluster.Config{
		ShardFaults: *shardFaults,
		ShardWords:  *shardWords,
		Deadline:    *deadline,
		Logf:        logf,
	}
	if *chaosKill != "" {
		cfg.CrashHook = chaosKillHook(*chaosKill)
	}
	opt, cleanup, err := openJournal(*journalPath, *resume)
	if err != nil {
		fatal(err)
	}
	defer cleanup()
	if opt.Resume != nil {
		fmt.Printf("journal: resuming %d/%d shards (torn tail: %v)\n",
			opt.Resume.Shards(), opt.Resume.Header.NShards, opt.Resume.Torn)
	}
	coord := cluster.New(cfg)
	defer coord.Close()

	lb := cluster.NewLoopback()
	go coord.Serve(lb)
	for i := 0; i < *nWorkers; i++ {
		w := &cluster.Worker{ID: fmt.Sprintf("local-%d", i), Dial: lb.Dial}
		go w.Run(context.Background())
	}
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "itrcluster: listening on %s\n", l.Addr())
		go coord.Serve(l)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	switch *job {
	case "detect":
		res, err := coord.DetectOpt(ctx, n, p, faults, *words, opt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("detect: %d/%d faults (coverage %.2f%%) in %v\n",
			res.Detected, res.Total, res.Coverage*100, time.Since(start).Round(time.Millisecond))
		fmt.Printf("result hash: %x\n", detectHash(res))
		if *verify {
			sim, err := fault.NewSimulator(n)
			if err != nil {
				fatal(err)
			}
			want := sim.RunSerial(p, faults)
			for i := range faults {
				if res.DetectedBy[i] != want.DetectedBy[i] {
					fmt.Fprintf(os.Stderr, "itrcluster: VERIFY FAILED: fault %d DetectedBy %d != serial %d\n",
						i, res.DetectedBy[i], want.DetectedBy[i])
					os.Exit(1)
				}
			}
			fmt.Println("verify: OK (bit-identical to serial)")
		}
	case "dictionary":
		sigs, err := coord.DictionaryOpt(ctx, n, p, faults, *words, opt)
		if err != nil {
			fatal(err)
		}
		failBits := 0
		for _, sg := range sigs {
			failBits += sg.FailBits()
		}
		fmt.Printf("dictionary: %d faults x %d POs x %d patterns, %d fail bits in %v\n",
			len(sigs), len(n.POs), p.N, failBits, time.Since(start).Round(time.Millisecond))
		fmt.Printf("result hash: %x\n", dictHash(sigs))
		if *verify {
			sim, err := fault.NewSimulator(n)
			if err != nil {
				fatal(err)
			}
			want := sim.Dictionary(p, faults)
			for fi := range want {
				for po := range want[fi].Bits {
					for w := range want[fi].Bits[po] {
						if sigs[fi].Bits[po][w] != want[fi].Bits[po][w] {
							fmt.Fprintf(os.Stderr, "itrcluster: VERIFY FAILED: signature (fault %d, po %d, word %d)\n", fi, po, w)
							os.Exit(1)
						}
					}
				}
			}
			fmt.Println("verify: OK (bit-identical to serial)")
		}
	default:
		fmt.Fprintf(os.Stderr, "itrcluster: unknown -job %q: must be detect or dictionary\n", *job)
		os.Exit(2)
	}
	st := coord.Stats()
	fmt.Printf("workers joined %d lost %d; shards dispatched %d redispatched %d duplicate %d\n",
		st.WorkersJoined, st.WorkersLost, st.ShardsDispatched, st.Redispatches, st.Duplicates)
}

func runWorker(args []string) {
	fs := flag.NewFlagSet("itrcluster worker", flag.ExitOnError)
	var (
		connect = fs.String("connect", "", "coordinator TCP address")
		id      = fs.String("id", "", "worker name in coordinator logs (default host:pid)")
		quiet   = fs.Bool("quiet", false, "suppress progress logging")
	)
	fs.Parse(args)
	if *connect == "" {
		fatal(fmt.Errorf("worker: need -connect addr"))
	}
	name := *id
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	logf := func(string, ...any) {}
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	w := &cluster.Worker{
		ID:   name,
		Dial: func() (net.Conn, error) { return net.Dial("tcp", *connect) },
		Logf: logf,
	}
	// Run reconnects forever; the worker is stopped by its process being
	// killed (which the coordinator tolerates by design).
	if err := w.Run(context.Background()); err != nil {
		fatal(err)
	}
}

// chaosKillHook parses "point:N" (N defaults to 1) and returns a crash hook
// that exits the process with status 3 at the Nth hit of the named point —
// a real crash, so any journal bytes not yet fsynced are genuinely lost.
func chaosKillHook(spec string) func(string) bool {
	point, after := spec, 1
	if i := strings.LastIndex(spec, ":"); i >= 0 {
		n, err := strconv.Atoi(spec[i+1:])
		if err != nil || n < 1 {
			fatal(fmt.Errorf("invalid -chaos-kill %q: count must be a positive integer", spec))
		}
		point, after = spec[:i], n
	}
	if !chaos.ValidCrashPoint(point) {
		fatal(fmt.Errorf("invalid -chaos-kill point %q: one of %s", point, strings.Join(chaos.CrashPoints, ", ")))
	}
	plan := &chaos.CrashPlan{Point: point, After: after}
	return func(p string) bool {
		if plan.Hook()(p) {
			fmt.Fprintf(os.Stderr, "itrcluster: chaos: crashing at %s (hit %d)\n", point, after)
			os.Exit(3)
		}
		return false
	}
}

// openJournal opens or resumes the write-ahead journal. A fresh run truncates
// the file; -resume replays it, discards any torn tail (truncating the file
// back to the last intact record so appended records extend a clean prefix),
// and positions the write cursor at the end of the valid prefix.
func openJournal(path string, resume bool) (cluster.JobOptions, func(), error) {
	var opt cluster.JobOptions
	if path == "" {
		if resume {
			return opt, nil, fmt.Errorf("-resume requires -journal <path>")
		}
		return opt, func() {}, nil
	}
	if !resume {
		f, err := os.Create(path)
		if err != nil {
			return opt, nil, err
		}
		opt.Journal = cluster.NewJournal(f)
		return opt, func() { f.Close() }, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return opt, nil, err
	}
	rep, err := cluster.ReadJournal(f)
	if err != nil {
		f.Close()
		if errors.Is(err, cluster.ErrJournalCorrupt) {
			return opt, nil, fmt.Errorf("journal %s unusable: %w", path, err)
		}
		return opt, nil, err
	}
	if rep.Torn {
		fmt.Fprintf(os.Stderr, "itrcluster: journal %s has a torn tail; discarding bytes past offset %d\n", path, rep.Valid)
	}
	if err := f.Truncate(rep.Valid); err != nil {
		f.Close()
		return opt, nil, err
	}
	if _, err := f.Seek(rep.Valid, io.SeekStart); err != nil {
		f.Close()
		return opt, nil, err
	}
	opt.Resume = rep
	opt.Journal = cluster.NewJournal(f)
	return opt, func() { f.Close() }, nil
}

func loadCircuit(benchPath, gen string) (*circuit.Netlist, error) {
	switch {
	case benchPath != "":
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ParseBench(f, benchPath)
	case gen != "":
		return circuit.FromSpec(gen)
	default:
		return nil, fmt.Errorf("need -bench <file> or -gen <name>")
	}
}

// detectHash digests the full DetectedBy vector — equal hashes across runs
// and worker topologies are the quick cross-machine bit-identity check.
func detectHash(res *fault.Result) []byte {
	h := sha256.New()
	var b [8]byte
	for _, v := range res.DetectedBy {
		binary.BigEndian.PutUint64(b[:], uint64(int64(v)))
		h.Write(b[:])
	}
	return h.Sum(nil)[:8]
}

// dictHash digests every signature word in (fault, po, word) order.
func dictHash(sigs []*fault.Signature) []byte {
	h := sha256.New()
	var b [8]byte
	for _, sg := range sigs {
		for _, ws := range sg.Bits {
			for _, w := range ws {
				binary.BigEndian.PutUint64(b[:], uint64(w))
				h.Write(b[:])
			}
		}
	}
	return h.Sum(nil)[:8]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itrcluster:", err)
	os.Exit(1)
}
