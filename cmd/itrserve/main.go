// Command itrserve is the online test-floor inference daemon: it loads
// trained itr-model/v1 artifacts into a hot-swappable model registry and
// serves them over HTTP with micro-batching, expvar/pprof observability,
// structured logging, load shedding, and graceful shutdown.
//
// Endpoints:
//
//	POST /v1/wafer/classify   {"cells": [[0,1,2,...],...]}      HDC wafer-map class
//	POST /v1/outlier/score    {"x": [..12 floats..]}            outlier score + reject verdict
//	POST /v1/adaptive/decide  {"x": [..12 floats..]}            continue / retest / stop
//	GET  /v1/models                                             installed model versions
//	GET  /healthz, /readyz                                      liveness / readiness
//	GET  /debug/vars, /debug/pprof/                             metrics, profiling
//
// Usage:
//
//	itrserve -demo                        # train small built-in models, serve on :8080
//	itrserve -models DIR                  # load *.json / *.itm artifacts from DIR
//	itrserve -probe http://host:8080      # client mode: exercise a running server
//	itrserve -migrate DIR                 # one-shot v1 JSON -> v2 binary conversion, then exit
//	itrserve -demo -replicate-listen :9090        # also serve the artifact store to replicas
//	itrserve -replicate-from host:9090 -models D  # pull missing artifacts before serving
//	itrserve -replicate-from host:9090 -replicate-only  # sync and exit (cron/CI)
//
// Replication is content-addressed: every artifact is verified against its
// embedded blake2b-256 content hash before install, so a corrupted link or
// store yields a typed refusal, never a wrong model.
//
// SIGTERM/SIGINT drain in-flight requests before exiting; SIGHUP re-scans
// the -models directory (hot swap without restart).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/wafer"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		modelDir    = flag.String("models", "", "directory of itr-model/v1 artifact files (*.json)")
		demo        = flag.Bool("demo", false, "train small built-in demo models at startup")
		probe       = flag.String("probe", "", "client mode: exercise a running itrserve at this base URL and exit")
		maxBatch    = flag.Int("batch", 32, "max requests coalesced per inference batch")
		window      = flag.Duration("window", time.Millisecond, "micro-batch flush window")
		queueCap    = flag.Int("queue", 0, "inference queue capacity (0 = 8x batch)")
		maxInflight = flag.Int("maxinflight", 1024, "max concurrently admitted requests before shedding 429")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		workers     = flag.Int("workers", 0, "intra-batch inference workers (0 = GOMAXPROCS)")
		dim         = flag.Int("dim", 2048, "demo model hypervector dimension")
		size        = flag.Int("size", 32, "demo model wafer grid size")
		seed        = flag.Int64("seed", 1, "demo model training seed")
		quiet       = flag.Bool("quiet", false, "disable per-request logging")

		migrate    = flag.String("migrate", "", "one-shot mode: convert v1 JSON artifacts in DIR to itr-model/v2 binary, then exit")
		repListen  = flag.String("replicate-listen", "", "also serve the artifact store to replicas on this address")
		repFrom    = flag.String("replicate-from", "", "pull missing artifacts from a peer's replication address before serving")
		repOnly    = flag.Bool("replicate-only", false, "with -replicate-from: sync, print the report and exit")
		repCorrupt = flag.Int64("replicate-corrupt", 0, "chaos hook: corrupt the Nth artifact served to replicas (testing)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *probe != "" {
		if err := runProbe(*probe, *size); err != nil {
			fmt.Fprintln(os.Stderr, "itrserve: probe:", err)
			os.Exit(1)
		}
		fmt.Println("probe ok")
		return
	}
	if *migrate != "" {
		if err := runMigrate(*migrate); err != nil {
			fmt.Fprintln(os.Stderr, "itrserve: migrate:", err)
			os.Exit(1)
		}
		return
	}

	reg := serve.NewRegistry()
	demoCfg := serve.DemoConfig{Dim: *dim, GridSize: *size, Seed: *seed}
	if *demo {
		logger.Info("training demo models", "dim", *dim, "size", *size, "seed", *seed)
		if err := serve.InstallDemoModels(reg, demoCfg); err != nil {
			fatal(logger, err)
		}
	}
	if *modelDir != "" {
		sum, err := reg.LoadDir(*modelDir)
		if err != nil {
			fatal(logger, err)
		}
		for _, s := range sum.Skipped {
			logger.Warn("skipped model artifact", "dir", *modelDir, "reason", s)
		}
		logger.Info("loaded model artifacts", "dir", *modelDir,
			"count", sum.Installed, "skipped", len(sum.Skipped))
	}
	if *repFrom != "" {
		rep, err := serve.ReplicateFrom(*repFrom, reg, *modelDir, 30*time.Second)
		if err != nil {
			fatal(logger, fmt.Errorf("replicate from %s: %w", *repFrom, err))
		}
		for _, s := range rep.Skipped {
			logger.Warn("replication skipped artifact", "reason", s)
		}
		for _, m := range rep.Pulled {
			logger.Info("replicated artifact", "kind", m.Kind, "name", m.Name,
				"version", m.Version, "hash", m.Hash[:12])
		}
		logger.Info("replication synced", "peer", *repFrom, "pulled", len(rep.Pulled),
			"already_present", rep.AlreadyHad, "remote_manifest", len(rep.Remote))
		if *repOnly {
			fmt.Printf("replicated %d artifacts from %s (%d already present)\n",
				len(rep.Pulled), *repFrom, rep.AlreadyHad)
			return
		}
	}
	var repSrv *serve.RepServer
	if *repListen != "" {
		var err error
		repSrv, err = serve.NewRepServer(reg, *repListen, logger)
		if err != nil {
			fatal(logger, err)
		}
		repSrv.CorruptNth = *repCorrupt
		repSrv.CorruptOffset = -1
		go repSrv.Serve()
		defer repSrv.Close()
		logger.Info("replication listener up", "addr", repSrv.Addr())
	}
	for _, m := range reg.Models() {
		logger.Info("model installed", "kind", m.Kind, "name", m.Name,
			"version", m.Version, "hash", m.Hash[:12])
	}
	if !reg.Ready() {
		logger.Warn("registry incomplete: /readyz will report 503 until every slot has a model " +
			"(start with -demo or -models DIR)")
	}

	reqLogger := logger
	if *quiet {
		reqLogger = nil
	}
	srv := serve.New(serve.Config{
		Registry:       reg,
		MaxBatch:       *maxBatch,
		FlushWindow:    *window,
		QueueCap:       *queueCap,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *timeout,
		Workers:        *workers,
		Logger:         reqLogger,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Lifecycle: SIGINT/SIGTERM drain and exit, SIGHUP rescans -models.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	for {
		select {
		case err := <-errCh:
			if err != nil && err != http.ErrServerClosed {
				fatal(logger, err)
			}
			return
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if *modelDir == "" {
					logger.Warn("SIGHUP ignored: no -models directory to rescan")
					continue
				}
				sum, err := reg.LoadDir(*modelDir)
				if err != nil {
					logger.Error("model reload failed", "err", err)
					continue
				}
				for _, s := range sum.Skipped {
					logger.Warn("skipped model artifact", "dir", *modelDir, "reason", s)
				}
				logger.Info("models reloaded", "dir", *modelDir,
					"count", sum.Installed, "skipped", len(sum.Skipped))
				continue
			}
			logger.Info("shutting down: draining in-flight requests", "signal", sig.String())
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			err := httpSrv.Shutdown(ctx)
			cancel()
			srv.Close()
			if err != nil {
				fatal(logger, fmt.Errorf("shutdown: %w", err))
			}
			logger.Info("drained, bye")
			return
		}
	}
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("fatal", "err", err)
	os.Exit(1)
}

// runMigrate converts every v1 JSON artifact in dir to the binary v2
// format, printing sizes and content hashes. Originals stay as .v1.bak.
func runMigrate(dir string) error {
	sum, err := serve.MigrateDir(dir)
	if err != nil {
		return err
	}
	for _, m := range sum.Migrated {
		fmt.Printf("%s -> %s: %d -> %d bytes, hash %s\n",
			m.File, m.NewFile, m.OldBytes, m.NewBytes, m.Hash)
	}
	for _, s := range sum.Skipped {
		fmt.Fprintf(os.Stderr, "skipped %s\n", s)
	}
	fmt.Printf("migrated %d artifacts (%d skipped); originals kept as *.v1.bak\n",
		len(sum.Migrated), len(sum.Skipped))
	return nil
}

// runProbe exercises a running server end to end: health, readiness, one
// request per inference endpoint, the model listing, and /debug/vars. It is
// the CI smoke client.
func runProbe(base string, gridSize int) error {
	client := &http.Client{Timeout: 10 * time.Second}

	get := func(path string, want int) ([]byte, error) {
		resp, err := client.Get(base + path)
		if err != nil {
			return nil, fmt.Errorf("GET %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			return nil, fmt.Errorf("GET %s: status %d, want %d (%s)", path, resp.StatusCode, want, body)
		}
		return body, nil
	}
	post := func(path string, req, out any) error {
		buf, err := json.Marshal(req)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return fmt.Errorf("POST %s: %w", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d (%s)", path, resp.StatusCode, body)
		}
		return json.Unmarshal(body, out)
	}

	if body, err := get("/healthz", http.StatusOK); err != nil {
		return err
	} else if !bytes.Contains(body, []byte("ok")) {
		return fmt.Errorf("/healthz body %q missing ok", body)
	}
	if _, err := get("/readyz", http.StatusOK); err != nil {
		return err
	}

	// Wafer classification: a generated Scratch map must come back with a
	// valid class and model version.
	m := wafer.Generate(wafer.Scratch, wafer.Config{Size: gridSize, Noise: 0.01, PatternP: 0.85},
		rand.New(rand.NewSource(7)))
	cells := make([][]uint8, m.Size)
	for r := range cells {
		cells[r] = m.Cells[r*m.Size : (r+1)*m.Size]
	}
	var cls serve.WaferClassifyResponse
	if err := post("/v1/wafer/classify", serve.WaferClassifyRequest{Cells: cells}, &cls); err != nil {
		return err
	}
	if cls.ModelVersion < 1 || cls.Class == "" {
		return fmt.Errorf("classify response %+v lacks model version/class", cls)
	}
	fmt.Printf("classify: %s (v%d)\n", cls.Class, cls.ModelVersion)

	// Outlier scoring + adaptive decision on a nominal all-zero device.
	x := make([]float64, 12)
	var score serve.OutlierScoreResponse
	if err := post("/v1/outlier/score", serve.OutlierScoreRequest{X: x}, &score); err != nil {
		return err
	}
	fmt.Printf("score: %.3f reject=%v (%s v%d)\n", score.Score, score.Reject, score.Method, score.ModelVersion)
	var dec serve.AdaptiveDecideResponse
	if err := post("/v1/adaptive/decide", serve.OutlierScoreRequest{X: x}, &dec); err != nil {
		return err
	}
	fmt.Printf("decide: %s (score %.3f)\n", dec.Decision, dec.Score)

	var models serve.ModelsResponse
	if err := getJSON(client, base+"/v1/models", &models); err != nil {
		return err
	}
	if len(models.Models) == 0 {
		return fmt.Errorf("/v1/models returned no models")
	}

	// Observability: /debug/vars must expose the per-endpoint counters.
	body, err := get("/debug/vars", http.StatusOK)
	if err != nil {
		return err
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		return fmt.Errorf("/debug/vars is not JSON: %w", err)
	}
	if _, ok := vars["itrserve"]; !ok {
		return fmt.Errorf("/debug/vars missing itrserve metrics")
	}
	return nil
}

// getJSON fetches and decodes a JSON endpoint.
func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
