// Command itrbench regenerates the experiment tables and figures of the
// reproduction (see DESIGN.md for the experiment index).
//
// Usage:
//
//	itrbench -all            # run every experiment at full scale
//	itrbench -exp T1         # run one experiment (T1..T7, F1..F5)
//	itrbench -exp T3 -quick  # reduced workload for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		exp       = flag.String("exp", "", "experiment id (T1..T7, F1..F5)")
		quick     = flag.Bool("quick", false, "reduced workloads")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel workers (results are identical for any count)")
		words     = flag.Int("words", 1, "fault-simulation lane width: pattern words packed per cone walk, one of 1/2/4/8 (results are identical for any width)")
		benchjson = flag.String("benchjson", "", "run the fault-simulation benchmark sweep and write machine-readable timings to this file (e.g. BENCH_faultsim.json)")
		benchdir  = flag.String("benchdir", "testdata/bench", "directory of named .bench anchor netlists for -benchjson")
	)
	flag.Parse()

	if fault.NormalizeWords(*words) != *words {
		fmt.Fprintf(os.Stderr, "itrbench: invalid -words %d: must be 1, 2, 4 or 8\n", *words)
		os.Exit(2)
	}

	cfg := experiments.Default()
	cfg.Quick = *quick
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Words = *words

	start := time.Now()
	switch {
	case *benchjson != "":
		doc, err := experiments.RunFaultSimBench(cfg, *benchdir)
		if err != nil {
			fatal(err)
		}
		if err := doc.WriteJSON(*benchjson); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *benchjson)
	case *all:
		if err := experiments.RunAll(cfg); err != nil {
			fatal(err)
		}
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			fmt.Printf("\n================ %s ================\n", id)
			if err := experiments.Run(id, cfg); err != nil {
				fatal(err)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "usage: itrbench -all | -exp <id>[,<id>...] | -benchjson FILE [-quick] [-seed N] [-workers N] [-words N]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(experiments.Names(), " "))
		os.Exit(2)
	}
	fmt.Printf("\ntotal runtime: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itrbench:", err)
	os.Exit(1)
}
