// Command itrwafer demonstrates wafer-map defect classification: it
// generates a labeled dataset, trains the HDC classifier and the classical
// baselines, reports accuracy, and can render individual maps as ASCII art.
//
// Usage:
//
//	itrwafer                      # train + evaluate all classifiers
//	itrwafer -show Scratch        # print an example map of one class
//	itrwafer -dim 8192 -train 80  # bigger hypervectors / training set
//	itrwafer -export model.json   # train and save an itr-model/v1 JSON artifact
//	itrwafer -export model.itm    # same model in the binary itr-model/v2 format
//	itrwafer -import model.json   # evaluate a saved artifact (either format)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/wafer"
	"repro/internal/yieldmodel"
)

func main() {
	var (
		show    = flag.String("show", "", "render one example map of a class and exit")
		dim     = flag.Int("dim", 4096, "hypervector dimension")
		trainN  = flag.Int("train", 40, "training maps per class")
		testN   = flag.Int("test", 20, "test maps per class")
		size    = flag.Int("size", 64, "wafer grid size")
		seed    = flag.Int64("seed", 1, "random seed")
		export  = flag.String("export", "", "train the HDC classifier and write it as an itr-model/v1 artifact")
		imprt   = flag.String("import", "", "load a saved artifact and evaluate it instead of training")
		version = flag.Int("version", 1, "artifact version written by -export")
	)
	flag.Parse()

	cfg := wafer.DefaultConfig()
	cfg.Size = *size

	if *show != "" {
		class, ok := classByName(*show)
		if !ok {
			fatal(fmt.Errorf("unknown class %q", *show))
		}
		m := wafer.Generate(class, cfg, rand.New(rand.NewSource(*seed)))
		render(m)
		return
	}

	if *export != "" {
		if err := exportModel(*export, cfg, *dim, *trainN, *seed, *version); err != nil {
			fatal(err)
		}
		return
	}
	if *imprt != "" {
		if err := importModel(*imprt, cfg, *testN, *seed); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("generating %d train / %d test maps per class (%d classes, %dx%d)\n",
		*trainN, *testN, wafer.NumClasses, *size, *size)
	train := wafer.GenerateDataset(*trainN, cfg, *seed)
	test := wafer.GenerateDataset(*testN, cfg, *seed+1)

	// Lot-level yield statistics over the generated wafers.
	if stats, err := yieldmodel.Estimate(train.Maps); err == nil {
		fmt.Printf("lot yield %.1f%%, mean fails/wafer %.0f", stats.Yield*100, stats.MeanFails)
		if stats.Clustered {
			fmt.Printf(", clustered defects (alpha %.2f)", stats.Alpha)
		}
		if d0, err := yieldmodel.FitD0(yieldmodel.Poisson, stats.Yield, 0); err == nil {
			fmt.Printf(", Poisson-equivalent D0 %.3f/die", d0)
		}
		fmt.Println()
	}

	results, err := core.EvaluateWaferClassifiers(train, test, *dim, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-12s %9s %9s %12s %12s\n", "model", "accuracy", "macro-F1", "train", "infer/map")
	for _, r := range results {
		fmt.Printf("%-12s %8.1f%% %9.3f %12v %12v\n",
			r.Name, r.Accuracy*100, r.MacroF1, r.TrainTime.Round(1e6), r.InferPer.Round(1e3))
	}

	// Confusion matrix of the HDC model.
	fmt.Println("\nHDC confusion matrix (rows = truth):")
	fmt.Printf("%-10s", "")
	for c := wafer.Class(0); c < wafer.NumClasses; c++ {
		fmt.Printf("%6.6s", c.String())
	}
	fmt.Println()
	for a, row := range results[0].Confusion {
		fmt.Printf("%-10s", wafer.Class(a).String())
		for _, v := range row {
			fmt.Printf("%6d", v)
		}
		fmt.Println()
	}
}

// exportModel trains the HDC classifier on a generated dataset and writes
// it as a versioned itr-model/v1 artifact — the input of itrserve's model
// registry.
func exportModel(path string, cfg wafer.Config, dim, trainN int, seed int64, version int) error {
	fmt.Printf("training HDC-d%d on %d maps/class (%dx%d, seed %d)\n",
		dim, trainN, cfg.Size, cfg.Size, seed)
	train := wafer.GenerateDataset(trainN, cfg, seed)
	cls := core.NewHDCWaferClassifier(dim, cfg.Size, 20, seed)
	if err := cls.Fit(train); err != nil {
		return err
	}
	a, err := serve.NewArtifact(serve.KindWaferHDC, "itrwafer-hdc", version, cls)
	if err != nil {
		return err
	}
	a.CreatedUnix = time.Now().Unix()
	if strings.HasSuffix(path, ".itm") {
		if a, err = a.ToV2(); err != nil {
			return err
		}
	}
	if err := a.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s artifact v%d (%s) to %s, hash %s\n",
		a.Kind, a.Version, a.Schema, path, a.Hash)
	return nil
}

// importModel loads a saved wafer-classifier artifact and evaluates it on a
// freshly generated test set.
func importModel(path string, cfg wafer.Config, testN int, seed int64) error {
	a, err := serve.ReadArtifact(path)
	if err != nil {
		return err
	}
	reg := serve.NewRegistry()
	if _, err := reg.Install(a); err != nil {
		return err
	}
	model := reg.Wafer()
	if model == nil {
		return fmt.Errorf("artifact %s is %q, not a wafer classifier", path, a.Kind)
	}
	cls := model.Cls
	if gs := cls.GridSize(); gs != cfg.Size {
		fmt.Printf("note: model grid %dx%d overrides -size %d\n", gs, gs, cfg.Size)
		cfg.Size = gs
	}
	fmt.Printf("loaded %s %q v%d (dim %d, grid %dx%d)\n",
		a.Kind, a.Name, a.Version, cls.Dim, cfg.Size, cfg.Size)
	test := wafer.GenerateDataset(testN, cfg, seed+1)
	correct := 0
	for i, m := range test.Maps {
		if cls.Predict(m) == test.Labels[i] {
			correct++
		}
	}
	fmt.Printf("accuracy %.1f%% on %d generated test maps\n",
		100*float64(correct)/float64(len(test.Maps)), len(test.Maps))
	return nil
}

func classByName(name string) (wafer.Class, bool) {
	for c := wafer.Class(0); c < wafer.NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

func render(m *wafer.Map) {
	fmt.Printf("class: %v, fail fraction %.1f%%\n", m.Label, m.FailFraction()*100)
	for r := 0; r < m.Size; r++ {
		for c := 0; c < m.Size; c++ {
			switch m.At(r, c) {
			case wafer.OffDie:
				fmt.Print(" ")
			case wafer.Pass:
				fmt.Print(".")
			default:
				fmt.Print("X")
			}
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itrwafer:", err)
	os.Exit(1)
}
