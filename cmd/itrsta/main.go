// Command itrsta runs static timing analysis on a netlist against a
// freshly characterized standard-cell library, with optional aging and
// temperature corners.
//
// Usage:
//
//	itrsta -gen adder16                       # nominal 300 K timing
//	itrsta -gen mul8 -temp 10                 # cryogenic corner
//	itrsta -gen alu8 -years 10 -duty 0.5      # workload-aware aged timing
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/aging"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/spice"
	"repro/internal/sta"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "path to a .bench netlist")
		gen       = flag.String("gen", "adder16", "built-in circuit (see itratpg -h)")
		temp      = flag.Float64("temp", 300, "operating temperature [K]")
		years     = flag.Float64("years", 0, "mission time for aging analysis")
		duty      = flag.Float64("duty", 0.5, "workload duty factor (with -years)")
		coarse    = flag.Bool("coarse", false, "coarse characterization grid (faster)")
		path      = flag.Bool("path", false, "print the critical path")
		workers   = flag.Int("workers", runtime.NumCPU(), "characterization workers (results are identical for any count)")
	)
	flag.Parse()

	n, err := loadCircuit(*benchPath, *gen)
	if err != nil {
		fatal(err)
	}
	fmt.Println(n.Stats())

	grid := liberty.DefaultGrid()
	if *coarse {
		grid = liberty.CoarseGrid()
	}
	fmt.Printf("characterizing library at %g K (%d workers) ...\n", *temp, *workers)
	lib, err := liberty.CharacterizeWorkers("lib", liberty.AllCells(), spice.Default(*temp), grid, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Println(lib.Summary())

	an, err := sta.New(n, lib)
	if err != nil {
		fatal(err)
	}
	tm, err := an.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("critical path delay: %.1f ps  (fmax %.0f MHz)\n", tm.WCDelay*1e12, tm.Fmax()/1e6)
	fmt.Printf("shortest path delay: %.1f ps  (hold-side bound)\n", tm.MinDelay*1e12)
	fmt.Printf("cell leakage power: %.3g W\n", an.LeakagePower())

	if *path {
		fmt.Println("critical path:")
		for _, s := range tm.Path {
			edge := "fall"
			if s.Rise {
				edge = "rise"
			}
			name := n.Gates[s.Gate].Name
			fmt.Printf("  %-12s %-10s %s  arrival %7.1f ps  (+%.1f)\n",
				name, s.Cell, edge, s.Arrival*1e12, s.Delay*1e12)
		}
	}

	if *years > 0 {
		model := aging.Default()
		s := aging.Stress{Years: *years, TempK: *temp, Duty: *duty, Activity: *duty / 2, ClockHz: tm.Fmax()}
		if err := s.Validate(); err != nil {
			fatal(err)
		}
		wc := model.Degradation(aging.WorstCase(*years, *temp, tm.Fmax()))
		act := model.Degradation(s)
		an.SetUniformDerate(wc)
		wcT, err := an.Run()
		if err != nil {
			fatal(err)
		}
		an.SetUniformDerate(act)
		actT, err := an.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("after %.1f years: worst-case %.1f ps, workload (duty %.2f) %.1f ps, margin recovered %.0f%%\n",
			*years, wcT.WCDelay*1e12, *duty, actT.WCDelay*1e12,
			model.GuardbandSavings(s)*100)
		// Full per-gate analysis.
		rep, err := core.AgingAwareSTA(n, lib, core.AgingSTAConfig{
			Years: *years, TempK: *temp, ClockHz: tm.Fmax(),
			Patterns: 256, Seed: 1, Model: model, MLTrainPoints: 300,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("per-gate workload-aware: %.1f ps (savings %.0f%%), ML-predicted %.1f ps (estimator MAPE %.2f%%)\n",
			rep.WorkloadAware*1e12, rep.SavingsFrac*100, rep.MLPredicted*1e12, rep.MLMAPE*100)
	}
}

func loadCircuit(benchPath, gen string) (*circuit.Netlist, error) {
	if benchPath != "" {
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ParseBench(f, benchPath)
	}
	switch gen {
	case "c17":
		return circuit.MustC17(), nil
	case "adder8":
		return circuit.RippleAdder(8), nil
	case "adder16":
		return circuit.RippleAdder(16), nil
	case "mul4":
		return circuit.ArrayMultiplier(4), nil
	case "mul8":
		return circuit.ArrayMultiplier(8), nil
	case "alu8":
		return circuit.ALUSlice(8), nil
	}
	return nil, fmt.Errorf("unknown circuit %q", gen)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itrsta:", err)
	os.Exit(1)
}
