// Command itratpg runs automatic test pattern generation and fault
// simulation on a .bench netlist (or a built-in generated circuit) and
// reports coverage, pattern count and the test set itself.
//
// Usage:
//
//	itratpg -bench c432.bench            # ATPG on a .bench file
//	itratpg -gen mul8                    # ATPG on a built-in circuit
//	itratpg -gen adder16 -patterns out.txt -naive
//	itratpg -gen mul8 -workers 8 -words 8    # speculative parallel flow
//	itratpg -benchjson BENCH_atpg.json       # batched-vs-serial trajectory
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/bist"
	"repro/internal/circuit"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/logic"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "path to a .bench netlist")
		gen       = flag.String("gen", "", "built-in circuit: c17, adderN, mulN, aluN, cmpN, parityN, decN, gparityU.C.E, randI.G.S")
		patOut    = flag.String("patterns", "", "write generated patterns to this file")
		naive     = flag.Bool("naive", false, "use the naive backtrace (ablation)")
		seed      = flag.Int64("seed", 1, "random seed")
		noCompact = flag.Bool("nocompact", false, "skip static compaction")
		workers   = flag.Int("workers", 0, "speculative PODEM worker count (<= 0 selects GOMAXPROCS; results are identical for any count)")
		words     = flag.Int("words", 1, "fault-simulation lane width: pattern words packed per cone walk, one of 1/2/4/8 (results are identical for any width)")
		serial    = flag.Bool("serial", false, "use the serial reference flow instead of the batched speculative one (ablation; identical results)")
		benchjson = flag.String("benchjson", "", "run the ATPG benchmark sweep (batched vs serial deterministic phase) and write BENCH_atpg.json-style output to this path")
		benchdir  = flag.String("benchdir", "testdata/bench", "directory of named .bench anchor netlists for -benchjson")
		quick     = flag.Bool("quick", false, "shrink the -benchjson sweep to small circuits")
		doBIST    = flag.Bool("bist", false, "run a logic BIST session instead of ATPG")
		lfsrLen   = flag.Int("lfsr", 32, "LFSR length for -bist")
		misrLen   = flag.Int("misr", 24, "MISR length for -bist")
		bistPats  = flag.Int("n", 512, "patterns for -bist")
	)
	flag.Parse()

	if fault.NormalizeWords(*words) != *words {
		fmt.Fprintf(os.Stderr, "itratpg: invalid -words %d: must be 1, 2, 4 or 8\n", *words)
		os.Exit(2)
	}

	if *benchjson != "" {
		ecfg := experiments.Default()
		ecfg.Seed = *seed
		ecfg.Quick = *quick
		ecfg.Workers = *workers
		ecfg.Words = *words
		doc, err := experiments.RunATPGBench(ecfg, *benchdir)
		if err != nil {
			fatal(err)
		}
		if err := doc.WriteJSON(*benchjson); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d rows to %s\n", len(doc.Rows), *benchjson)
		return
	}

	n, err := loadCircuit(*benchPath, *gen)
	if err != nil {
		fatal(err)
	}
	fmt.Println(n.Stats())

	if *doBIST {
		res, err := bist.Run(n, *lfsrLen, *misrLen, uint64(*seed), *bistPats)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("BIST: %d LFSR patterns, coverage %.2f%% (%d/%d faults)\n",
			res.Patterns, res.Coverage*100, res.Detected, res.TotalFaults)
		fmt.Printf("good signature: %0*x (%d-bit MISR), aliased faults: %d\n",
			(*misrLen+3)/4, res.GoodSignature, *misrLen, res.Aliased)
		return
	}

	cfg := atpg.DefaultConfig()
	cfg.Seed = *seed
	cfg.Compact = !*noCompact
	cfg.Workers = *workers
	cfg.Words = *words
	cfg.Serial = *serial
	if *naive {
		cfg.Guide = atpg.GuideNaive
	}
	res, err := atpg.Run(n, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("faults: %d collapsed\n", res.TotalFaults)
	fmt.Printf("detected: %d (coverage %.2f%%), redundant: %d, aborted: %d (efficiency %.2f%%)\n",
		res.Detected, res.Coverage*100, res.Redundant, res.Aborted, res.Efficiency*100)
	fmt.Printf("patterns: %d (%d from random phase, %d deterministic detections)\n",
		res.Patterns.N, res.RandomPhase, res.DetPhase)
	fmt.Printf("deterministic phase: gen %v, drop %v\n",
		res.GenTime.Round(1e3), res.DropTime.Round(1e3))
	fmt.Printf("backtracks: %d, runtime: %v\n", res.Backtracks, res.Runtime.Round(1e6))

	if *patOut != "" {
		f, err := os.Create(*patOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for k := 0; k < res.Patterns.N; k++ {
			fmt.Fprintln(f, logic.FormatBits(res.Patterns.Pattern(k)))
		}
		fmt.Printf("wrote %d patterns to %s\n", res.Patterns.N, *patOut)
	}
}

// loadCircuit resolves the -bench / -gen flags to a netlist.
func loadCircuit(benchPath, gen string) (*circuit.Netlist, error) {
	switch {
	case benchPath != "":
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return circuit.ParseBench(f, benchPath)
	case gen != "":
		return circuit.FromSpec(gen)
	default:
		return nil, fmt.Errorf("need -bench <file> or -gen <name>")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "itratpg:", err)
	os.Exit(1)
}
